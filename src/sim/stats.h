#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sim/thread_annotations.h"
#include "sim/time.h"

namespace mcs::sim {

class JsonWriter;

// Streaming summary of scalar samples: count/mean/min/max/stddev plus exact
// percentiles from retained samples (capped via uniform reservoir sampling
// so memory stays bounded on long runs).
class Histogram {
 public:
  explicit Histogram(std::size_t max_samples = 65536);

  void record(double value);
  void record_time(Time t) { record(t.to_millis()); }

  std::uint64_t count() const { return count_; }
  double mean() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double stddev() const;
  double sum() const { return sum_; }
  // p in [0,100]; exact over retained samples.
  double percentile(double p) const;

  void clear();

  // Fold another histogram into this one. Count/sum/min/max stay exact;
  // retained samples are concatenated up to the cap, so merged percentiles
  // are approximate once either side overflowed its reservoir.
  //
  // Merge order is part of the determinism contract: sums are folded in
  // cell order after the sweep's threads have joined, never concurrently
  // (float addition does not commute bit-for-bit across orders).
  void merge(const Histogram& other) MCS_EXTERNALLY_SERIALIZED;

  // "n=100 mean=1.2 p50=1.1 p95=2.0 max=3.4"
  std::string summary(const char* unit = "") const;

  // {"count":..,"mean":..,"stddev":..,"min":..,"max":..,"p50":..,...}
  void to_json(JsonWriter& w) const;

 private:
  std::size_t max_samples_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  // xorshift state for reservoir replacement; independent of model Rngs so
  // stats never perturb simulated behaviour.
  std::uint64_t reservoir_state_ = 0x853c49e6748fea9bull;
};

// Monotonic event/byte counter with a rate helper.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void clear() { value_ = 0; }
  // Events (or bytes) per second over `elapsed`.
  double rate(Time elapsed) const {
    const double s = elapsed.to_seconds();
    return s > 0.0 ? static_cast<double>(value_) / s : 0.0;
  }

 private:
  std::uint64_t value_ = 0;
};

// Named stats for one component; registries compose into system reports.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  std::string report(const std::string& prefix = "") const;
  void clear();

  // Fold another registry into this one: counters add, histograms merge.
  // Used to aggregate per-entity registries (e.g. every mobile's browser)
  // into one component-level view. Caller-serialized, in deterministic
  // (cell) order, after worker threads join — see Histogram::merge.
  void merge(const StatsRegistry& other) MCS_EXTERNALLY_SERIALIZED;

  // {"counters":{...},"histograms":{...}}; keys in sorted (map) order so
  // serialization is deterministic.
  void to_json(JsonWriter& w) const;
  std::string to_json_string() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

// System-wide aggregation helper: named point-in-time copies of component
// registries plus scalar/text metadata, exported as one deterministic JSON
// document. The workload metrics layer fills one of these per run; benches
// write it next to their human-readable tables.
class StatsSnapshot {
 public:
  // Copies `registry` under `path` ("host.web_server", "net.gateway", ...).
  // Adding the same path twice merges into the earlier copy.
  // Caller-serialized like every merge path (see Histogram::merge).
  void add(const std::string& path,
           const StatsRegistry& registry) MCS_EXTERNALLY_SERIALIZED;
  void set_value(const std::string& path, double v) { values_[path] = v; }
  void set_text(const std::string& path, std::string v) {
    texts_[path] = std::move(v);
  }

  bool empty() const {
    return registries_.empty() && values_.empty() && texts_.empty();
  }
  const std::map<std::string, StatsRegistry>& registries() const {
    return registries_;
  }
  const std::map<std::string, double>& values() const { return values_; }
  const std::map<std::string, std::string>& texts() const { return texts_; }

  // {"meta":{texts},"values":{...},"components":{path:registry,...}}
  void to_json(JsonWriter& w) const;
  std::string to_json_string() const;

 private:
  std::map<std::string, StatsRegistry> registries_;
  std::map<std::string, double> values_;
  std::map<std::string, std::string> texts_;
};

}  // namespace mcs::sim
