#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mcs::sim {

// Streaming summary of scalar samples: count/mean/min/max/stddev plus exact
// percentiles from retained samples (capped via uniform reservoir sampling
// so memory stays bounded on long runs).
class Histogram {
 public:
  explicit Histogram(std::size_t max_samples = 65536);

  void record(double value);
  void record_time(Time t) { record(t.to_millis()); }

  std::uint64_t count() const { return count_; }
  double mean() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double stddev() const;
  double sum() const { return sum_; }
  // p in [0,100]; exact over retained samples.
  double percentile(double p) const;

  void clear();

  // "n=100 mean=1.2 p50=1.1 p95=2.0 max=3.4"
  std::string summary(const char* unit = "") const;

 private:
  std::size_t max_samples_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  // xorshift state for reservoir replacement; independent of model Rngs so
  // stats never perturb simulated behaviour.
  std::uint64_t reservoir_state_ = 0x853c49e6748fea9bull;
};

// Monotonic event/byte counter with a rate helper.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void clear() { value_ = 0; }
  // Events (or bytes) per second over `elapsed`.
  double rate(Time elapsed) const {
    const double s = elapsed.to_seconds();
    return s > 0.0 ? static_cast<double>(value_) / s : 0.0;
  }

 private:
  std::uint64_t value_ = 0;
};

// Named stats for one component; registries compose into system reports.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  std::string report(const std::string& prefix = "") const;
  void clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace mcs::sim
