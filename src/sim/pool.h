#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "sim/threading.h"

namespace mcs::sim {

// Free-list building blocks for hot-path object recycling (see DESIGN.md §8).
// Both pools are thread_local-friendly by construction: every simulator
// instance is confined to one thread (the parallel sweep runner pins one
// simulation per task), so acquire/release never contend on a lock and the
// pools add no cross-thread ordering that could perturb replay.
//
// That confinement is the concurrency contract (DESIGN.md §9): RecyclingPool
// binds to the first thread that touches it and asserts every later
// acquire/release comes from the same thread; PoolAllocator's free lists are
// `static thread_local`, confined by the language itself. Neither carries an
// MCS_GUARDED_BY annotation because there is deliberately no lock — a pool
// reached from two threads is a bug the checker aborts on, not contention.

// Pool of fully-constructed T objects. acquire() pops a recycled object (or
// default-constructs one); release() pushes it back without running ~T, so
// internal buffers (e.g. a packet payload's string capacity) survive reuse.
// The caller owns resetting recycled objects to a fresh-equivalent state.
// Objects still in the pool are destroyed with the pool itself.
template <typename T>
class RecyclingPool {
 public:
  RecyclingPool() = default;
  RecyclingPool(const RecyclingPool&) = delete;
  RecyclingPool& operator=(const RecyclingPool&) = delete;
  ~RecyclingPool() {
    for (T* obj : free_) delete obj;
  }

  // Pops a recycled object, or default-constructs when the pool is dry.
  T* acquire() {
    confinement_.assert_confined("RecyclingPool::acquire() off-thread");
    if (free_.empty()) {
      ++fresh_;
      return new T();
    }
    ++reused_;
    T* obj = free_.back();
    free_.pop_back();
    return obj;
  }

  void release(T* obj) {
    confinement_.assert_confined("RecyclingPool::release() off-thread");
    free_.push_back(obj);
  }

  std::size_t free_count() const { return free_.size(); }
  std::uint64_t fresh_allocations() const { return fresh_; }
  std::uint64_t reuses() const { return reused_; }

  // Drops every pooled object and zeroes the counters. Pools are per-thread
  // process state, so occupancy series recorded by the flight recorder are
  // only run-deterministic if each measured run starts cold; bench/telemetry
  // calls this between in-process repetitions. Never needed for
  // correctness — recycled objects are reset on acquire.
  void clear() {
    confinement_.assert_confined("RecyclingPool::clear() off-thread");
    for (T* obj : free_) delete obj;
    free_.clear();
    fresh_ = 0;
    reused_ = 0;
  }

 private:
  std::vector<T*> free_;
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
  ThreadConfinementChecker confinement_;
};

// Rebindable allocator backed by a per-type, per-thread free list of
// fixed-size chunks. Built for std::allocate_shared / shared_ptr control
// blocks: after warmup, allocating one is a pointer bump off the free list
// instead of a malloc. Chunks are returned to the releasing thread's list
// (safe either way: chunks are plain operator-new memory) and freed at
// thread exit.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    if (n != 1) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    ChunkList& list = chunks();
    if (list.head == nullptr) {
      return static_cast<T*>(::operator new(chunk_size()));
    }
    Chunk* c = list.head;
    list.head = c->next;
    return reinterpret_cast<T*>(c);
  }

  void deallocate(T* p, std::size_t n) {
    if (n != 1) {
      ::operator delete(p);
      return;
    }
    auto* c = reinterpret_cast<Chunk*>(p);
    ChunkList& list = chunks();
    c->next = list.head;
    list.head = c;
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
  friend bool operator!=(const PoolAllocator&, const PoolAllocator&) {
    return false;
  }

 private:
  struct Chunk {
    Chunk* next = nullptr;
  };

  static constexpr std::size_t chunk_size() {
    return sizeof(T) > sizeof(Chunk) ? sizeof(T) : sizeof(Chunk);
  }

  struct ChunkList {
    Chunk* head = nullptr;
    ~ChunkList() {
      while (head != nullptr) {
        Chunk* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  };

  static ChunkList& chunks() {
    static thread_local ChunkList list;
    return list;
  }
};

}  // namespace mcs::sim
