#include "security/wtls.h"

#include <cstdlib>

#include "sim/util.h"

namespace mcs::security {

using sim::strf;

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t mod) {
  // 61-bit modulus: products fit in unsigned __int128.
  unsigned __int128 result = 1;
  unsigned __int128 b = base % mod;
  while (exp > 0) {
    if (exp & 1) result = (result * b) % mod;
    b = (b * b) % mod;
    exp >>= 1;
  }
  return static_cast<std::uint64_t>(result);
}

DhKeyPair dh_generate(sim::Rng& rng) {
  DhKeyPair kp;
  kp.private_key = (rng.next_u64() % (kDhPrime - 2)) + 1;
  kp.public_key = mod_pow(kDhGenerator, kp.private_key, kDhPrime);
  return kp;
}

std::uint64_t dh_shared_secret(std::uint64_t my_private,
                               std::uint64_t their_public) {
  return mod_pow(their_public, my_private, kDhPrime);
}

namespace {

std::uint64_t keyed_mac(std::uint64_t key, const std::string& data) {
  // MAC(k, m) = FNV(k || m || k); keyed on both ends to resist extension.
  std::uint64_t h = sim::fnv1a(&key, sizeof(key));
  h = sim::fnv1a(data.data(), data.size(), h);
  return sim::fnv1a(&key, sizeof(key), h);
}

}  // namespace

std::string Certificate::encode() const {
  return strf("CERT %s %llu %llu", subject.c_str(),
              static_cast<unsigned long long>(public_key),
              static_cast<unsigned long long>(signature));
}

std::optional<Certificate> Certificate::decode(const std::string& s) {
  const auto f = sim::split(s, ' ');
  if (f.size() != 4 || f[0] != "CERT") return std::nullopt;
  Certificate c;
  c.subject = f[1];
  c.public_key = std::strtoull(f[2].c_str(), nullptr, 10);
  c.signature = std::strtoull(f[3].c_str(), nullptr, 10);
  return c;
}

Certificate issue_certificate(const std::string& subject,
                              std::uint64_t public_key, std::uint64_t ca_key) {
  Certificate c;
  c.subject = subject;
  c.public_key = public_key;
  c.signature = keyed_mac(ca_key, strf("%s|%llu", subject.c_str(),
                                       static_cast<unsigned long long>(
                                           public_key)));
  return c;
}

bool verify_certificate(const Certificate& cert, std::uint64_t ca_key) {
  return cert.signature ==
         keyed_mac(ca_key, strf("%s|%llu", cert.subject.c_str(),
                                static_cast<unsigned long long>(
                                    cert.public_key)));
}

// ---------------------------------------------------------------------------
// SecureChannel
// ---------------------------------------------------------------------------

SecureChannel::SecureChannel(std::uint64_t shared_secret, int sender_role)
    : secret_{shared_secret}, role_{sender_role} {}

std::string SecureChannel::keystream(std::uint64_t nonce, std::size_t len,
                                     int sender_role) const {
  // Keyed xorshift stream: state seeded from (secret, sender role, nonce).
  std::uint64_t state =
      secret_ ^ (nonce * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(sender_role) << 62) ^
      0xD1B54A32D192ED03ull;
  std::string out;
  out.reserve(len);
  while (out.size() < len) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    for (int i = 0; i < 8 && out.size() < len; ++i) {
      out.push_back(static_cast<char>((state >> (8 * i)) & 0xFF));
    }
  }
  return out;
}

std::string SecureChannel::seal(const std::string& plaintext) {
  const std::uint32_t seq = send_seq_++;
  const std::string ks = keystream(seq, plaintext.size(), role_);
  std::string body(plaintext.size(), '\0');
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    body[i] = static_cast<char>(plaintext[i] ^ ks[i]);
  }
  std::string out;
  out.push_back(static_cast<char>(seq >> 24));
  out.push_back(static_cast<char>(seq >> 16));
  out.push_back(static_cast<char>(seq >> 8));
  out.push_back(static_cast<char>(seq));
  out += body;
  const std::uint64_t mac = keyed_mac(secret_ ^ static_cast<std::uint64_t>(role_ + 1),
                                      out);
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<char>((mac >> (8 * i)) & 0xFF));
  }
  return out;
}

std::optional<std::string> SecureChannel::open(const std::string& sealed) {
  if (sealed.size() < kOverheadBytes) {
    ++bad_macs_;
    return std::nullopt;
  }
  const std::string macd = sealed.substr(0, sealed.size() - 8);
  std::uint64_t mac = 0;
  for (std::size_t i = sealed.size() - 8; i < sealed.size(); ++i) {
    mac = (mac << 8) | static_cast<std::uint8_t>(sealed[i]);
  }
  // The peer sealed with the opposite role.
  const int peer_role = 1 - role_;
  if (mac != keyed_mac(secret_ ^ static_cast<std::uint64_t>(peer_role + 1),
                       macd)) {
    ++bad_macs_;
    return std::nullopt;
  }
  std::uint32_t seq = 0;
  for (int i = 0; i < 4; ++i) {
    seq = (seq << 8) | static_cast<std::uint8_t>(macd[static_cast<std::size_t>(i)]);
  }
  if (seq < recv_next_) {
    ++replays_;
    return std::nullopt;
  }
  recv_next_ = seq + 1;
  const std::string body = macd.substr(4);
  // Decrypt with the PEER's sending keystream.
  const std::string ks = keystream(seq, body.size(), peer_role);
  std::string plain(body.size(), '\0');
  for (std::size_t i = 0; i < body.size(); ++i) {
    plain[i] = static_cast<char>(body[i] ^ ks[i]);
  }
  return plain;
}

// ---------------------------------------------------------------------------
// WtlsHandshake
// ---------------------------------------------------------------------------

WtlsHandshake::WtlsHandshake(Role role, sim::Rng rng, std::uint64_t ca_key,
                             std::optional<Certificate> my_cert,
                             std::uint64_t my_private)
    : role_{role},
      rng_{rng},
      ca_key_{ca_key},
      cert_{std::move(my_cert)},
      my_private_{my_private} {}

std::string WtlsHandshake::client_hello() {
  ephemeral_ = dh_generate(rng_);
  return strf("HELLO %llu",
              static_cast<unsigned long long>(ephemeral_.public_key));
}

std::optional<std::string> WtlsHandshake::on_client_hello(
    const std::string& msg) {
  if (role_ != Role::kServer || !cert_.has_value()) return std::nullopt;
  const auto f = sim::split(msg, ' ');
  if (f.size() != 2 || f[0] != "HELLO") return std::nullopt;
  const std::uint64_t client_pub = std::strtoull(f[1].c_str(), nullptr, 10);
  const std::uint64_t secret = dh_shared_secret(my_private_, client_pub);
  channel_.emplace(secret, /*sender_role=*/1);
  established_ = true;
  return "SHELLO " + cert_->encode();
}

std::optional<std::string> WtlsHandshake::on_server_hello(
    const std::string& msg) {
  if (role_ != Role::kClient) return std::nullopt;
  if (!sim::starts_with(msg, "SHELLO ")) return std::nullopt;
  const auto cert = Certificate::decode(msg.substr(7));
  if (!cert.has_value() || !verify_certificate(*cert, ca_key_)) {
    return std::nullopt;  // authentication failure
  }
  const std::uint64_t secret =
      dh_shared_secret(ephemeral_.private_key, cert->public_key);
  channel_.emplace(secret, /*sender_role=*/0);
  established_ = true;
  return strf("KEYX %llu",
              static_cast<unsigned long long>(ephemeral_.public_key));
}

bool WtlsHandshake::on_client_key_exchange(const std::string& msg) {
  // With a static server key the secret is already derived at SHELLO time;
  // the KEYX message exists for protocol-shape fidelity (and lets a server
  // double-check the client's public key).
  return role_ == Role::kServer && sim::starts_with(msg, "KEYX ") &&
         established_;
}

}  // namespace mcs::security
