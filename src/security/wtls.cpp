#include "security/wtls.h"

#include "sim/arena.h"
#include "sim/util.h"

namespace mcs::security {

using sim::strf;

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t mod) {
  // 61-bit modulus: products fit in unsigned __int128.
  unsigned __int128 result = 1;
  unsigned __int128 b = base % mod;
  while (exp > 0) {
    if (exp & 1) result = (result * b) % mod;
    b = (b * b) % mod;
    exp >>= 1;
  }
  return static_cast<std::uint64_t>(result);
}

DhKeyPair dh_generate(sim::Rng& rng) {
  DhKeyPair kp;
  kp.private_key = (rng.next_u64() % (kDhPrime - 2)) + 1;
  kp.public_key = mod_pow(kDhGenerator, kp.private_key, kDhPrime);
  return kp;
}

std::uint64_t dh_shared_secret(std::uint64_t my_private,
                               std::uint64_t their_public) {
  return mod_pow(their_public, my_private, kDhPrime);
}

namespace {

std::uint64_t keyed_mac(std::uint64_t key, std::string_view data) {
  // MAC(k, m) = FNV(k || m || k); keyed on both ends to resist extension.
  std::uint64_t h = sim::fnv1a(&key, sizeof(key));
  h = sim::fnv1a(data.data(), data.size(), h);
  return sim::fnv1a(&key, sizeof(key), h);
}

bool has_prefix(std::string_view s, std::string_view p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}

// strtoull(.., 10) semantics over a view (handshake fields are produced by
// our own serializers, so signs/overflow never occur).
std::uint64_t parse_u64(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && sim::is_ascii_space(s[i])) ++i;
  std::uint64_t v = 0;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
  }
  return v;
}

// Split on ' ' exactly as sim::split would (empty fields count toward the
// total), capturing the first `cap` fields as views. Returns the full count.
std::size_t split_fields(std::string_view s, std::string_view* f,
                         std::size_t cap) {
  std::size_t nf = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ' ') {
      if (nf < cap) f[nf] = std::string_view{s.data() + start, i - start};
      ++nf;
      start = i + 1;
    }
  }
  return nf;
}

// Keyed-xorshift stream generated a word at a time: the zero-copy
// counterpart of the old materialized keystream string, emitting the exact
// same byte sequence (state advances every 8 bytes; bytes are the word's
// little-end first).
class Keystream {
 public:
  Keystream(std::uint64_t secret, std::uint64_t nonce, int sender_role)
      : state_{secret ^ (nonce * 0x9E3779B97F4A7C15ull) ^
               (static_cast<std::uint64_t>(sender_role) << 62) ^
               0xD1B54A32D192ED03ull} {}

  char next() {
    if (byte_ == 0) {
      state_ ^= state_ << 13;
      state_ ^= state_ >> 7;
      state_ ^= state_ << 17;
    }
    const char c = static_cast<char>((state_ >> (8 * byte_)) & 0xFF);
    byte_ = (byte_ + 1) & 7;
    return c;
  }

 private:
  std::uint64_t state_;
  int byte_ = 0;
};

}  // namespace

std::string Certificate::encode() const {
  return strf("CERT %s %llu %llu", subject.c_str(),
              static_cast<unsigned long long>(public_key),
              static_cast<unsigned long long>(signature));
}

std::optional<Certificate> Certificate::decode(std::string_view s) {
  std::string_view f[4];
  if (split_fields(s, f, 4) != 4 || f[0] != "CERT") return std::nullopt;
  Certificate c;
  c.subject.assign(f[1].data(), f[1].size());
  c.public_key = parse_u64(f[2]);
  c.signature = parse_u64(f[3]);
  return c;
}

Certificate issue_certificate(const std::string& subject,
                              std::uint64_t public_key, std::uint64_t ca_key) {
  Certificate c;
  c.subject = subject;
  c.public_key = public_key;
  c.signature = keyed_mac(ca_key, sim::cat(subject, "|", sim::u64s(public_key)));
  return c;
}

bool verify_certificate(const Certificate& cert, std::uint64_t ca_key) {
  return cert.signature ==
         keyed_mac(ca_key,
                   sim::cat(cert.subject, "|", sim::u64s(cert.public_key)));
}

// ---------------------------------------------------------------------------
// SecureChannel
// ---------------------------------------------------------------------------

SecureChannel::SecureChannel(std::uint64_t shared_secret, int sender_role)
    : secret_{shared_secret}, role_{sender_role} {}

std::string SecureChannel::seal(std::string_view plaintext) {
  const std::uint32_t seq = send_seq_++;
  return sim::build(plaintext.size() + kOverheadBytes, [&](std::string& out) {
    sim::BufWriter w{out};
    w.ch(static_cast<char>(seq >> 24))
        .ch(static_cast<char>(seq >> 16))
        .ch(static_cast<char>(seq >> 8))
        .ch(static_cast<char>(seq));
    Keystream ks{secret_, seq, role_};
    for (const char c : plaintext) {
      w.ch(static_cast<char>(c ^ ks.next()));
    }
    const std::uint64_t mac = keyed_mac(
        secret_ ^ static_cast<std::uint64_t>(role_ + 1), w.view());
    for (int i = 7; i >= 0; --i) {
      w.ch(static_cast<char>((mac >> (8 * i)) & 0xFF));
    }
  });
}

std::optional<std::string> SecureChannel::open(std::string_view sealed) {
  if (sealed.size() < kOverheadBytes) {
    ++bad_macs_;
    return std::nullopt;
  }
  const std::string_view macd{sealed.data(), sealed.size() - 8};
  std::uint64_t mac = 0;
  for (std::size_t i = sealed.size() - 8; i < sealed.size(); ++i) {
    mac = (mac << 8) | static_cast<std::uint8_t>(sealed[i]);
  }
  // The peer sealed with the opposite role.
  const int peer_role = 1 - role_;
  if (mac != keyed_mac(secret_ ^ static_cast<std::uint64_t>(peer_role + 1),
                       macd)) {
    ++bad_macs_;
    return std::nullopt;
  }
  std::uint32_t seq = 0;
  for (int i = 0; i < 4; ++i) {
    seq = (seq << 8) | static_cast<std::uint8_t>(macd[static_cast<std::size_t>(i)]);
  }
  if (seq < recv_next_) {
    ++replays_;
    return std::nullopt;
  }
  recv_next_ = seq + 1;
  const std::string_view body{macd.data() + 4, macd.size() - 4};
  // Decrypt with the PEER's sending keystream, straight into the one
  // right-sized plaintext allocation.
  return sim::build(body.size(), [&](std::string& out) {
    sim::BufWriter w{out};
    Keystream ks{secret_, seq, peer_role};
    for (const char c : body) {
      w.ch(static_cast<char>(c ^ ks.next()));
    }
  });
}

// ---------------------------------------------------------------------------
// WtlsHandshake
// ---------------------------------------------------------------------------

WtlsHandshake::WtlsHandshake(Role role, sim::Rng rng, std::uint64_t ca_key,
                             std::optional<Certificate> my_cert,
                             std::uint64_t my_private)
    : role_{role},
      rng_{rng},
      ca_key_{ca_key},
      cert_{std::move(my_cert)},
      my_private_{my_private} {}

std::string WtlsHandshake::client_hello() {
  ephemeral_ = dh_generate(rng_);
  return sim::cat("HELLO ", sim::u64s(ephemeral_.public_key));
}

std::optional<std::string> WtlsHandshake::on_client_hello(
    std::string_view msg) {
  if (role_ != Role::kServer || !cert_.has_value()) return std::nullopt;
  std::string_view f[2];
  if (split_fields(msg, f, 2) != 2 || f[0] != "HELLO") return std::nullopt;
  const std::uint64_t client_pub = parse_u64(f[1]);
  const std::uint64_t secret = dh_shared_secret(my_private_, client_pub);
  channel_ = SecureChannel{secret, /*sender_role=*/1};
  established_ = true;
  return sim::cat("SHELLO ", cert_->encode());
}

std::optional<std::string> WtlsHandshake::on_server_hello(
    std::string_view msg) {
  if (role_ != Role::kClient) return std::nullopt;
  if (!has_prefix(msg, "SHELLO ")) return std::nullopt;
  const auto cert =
      Certificate::decode(std::string_view{msg.data() + 7, msg.size() - 7});
  if (!cert.has_value() || !verify_certificate(*cert, ca_key_)) {
    return std::nullopt;  // authentication failure
  }
  const std::uint64_t secret =
      dh_shared_secret(ephemeral_.private_key, cert->public_key);
  channel_ = SecureChannel{secret, /*sender_role=*/0};
  established_ = true;
  return sim::cat("KEYX ", sim::u64s(ephemeral_.public_key));
}

bool WtlsHandshake::on_client_key_exchange(std::string_view msg) {
  // With a static server key the secret is already derived at SHELLO time;
  // the KEYX message exists for protocol-shape fidelity (and lets a server
  // double-check the client's public key).
  return role_ == Role::kServer && has_prefix(msg, "KEYX ") && established_;
}

}  // namespace mcs::security
