#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/random.h"

namespace mcs::security {

// WTLS-style security layer (§8: "Security issues (including payment)
// include data reliability, integrity, confidentiality, and authentication").
//
// SIMULATION-GRADE ONLY: the key exchange is Diffie-Hellman in a 61-bit
// prime group, the cipher is a keyed-xorshift keystream, and the MAC is a
// keyed FNV construction. This exercises the real code paths and byte
// overheads of a secure session (handshake round trip, per-message MAC
// trailer, sequence numbers for replay protection) but is NOT
// cryptographically secure and must never protect real data.

// Group parameters (2^61-1 is prime; generator 3).
inline constexpr std::uint64_t kDhPrime = 2305843009213693951ull;
inline constexpr std::uint64_t kDhGenerator = 3;

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t mod);

struct DhKeyPair {
  std::uint64_t private_key = 0;
  std::uint64_t public_key = 0;
};
DhKeyPair dh_generate(sim::Rng& rng);
std::uint64_t dh_shared_secret(std::uint64_t my_private,
                               std::uint64_t their_public);

// A toy certificate: identity + public key, "signed" by a CA MAC key that
// both sides share out of band (models a pre-installed root certificate).
struct Certificate {
  std::string subject;
  std::uint64_t public_key = 0;
  std::uint64_t signature = 0;

  std::string encode() const;
  static std::optional<Certificate> decode(std::string_view s);
};
Certificate issue_certificate(const std::string& subject,
                              std::uint64_t public_key,
                              std::uint64_t ca_key);
bool verify_certificate(const Certificate& cert, std::uint64_t ca_key);

// Authenticated-encryption channel derived from a DH shared secret. Each
// sealed message carries a 4-byte sequence number and an 8-byte MAC; open()
// rejects tampering, truncation and replays.
class SecureChannel {
 public:
  // `sender_role` disambiguates the two keystream directions (client=0,
  // server=1) so the two sides never reuse a keystream.
  SecureChannel(std::uint64_t shared_secret, int sender_role);

  // View parameters: callers pass windows of transport buffers without
  // materializing substrings (DESIGN.md §12). The keystream is generated a
  // word at a time and XORed straight into the one right-sized output
  // allocation — no keystream or intermediate body strings.
  std::string seal(std::string_view plaintext);
  std::optional<std::string> open(std::string_view sealed);

  static constexpr std::size_t kOverheadBytes = 12;  // seq(4) + mac(8)
  std::uint32_t messages_sealed() const { return send_seq_; }
  std::uint64_t replays_rejected() const { return replays_; }
  std::uint64_t macs_rejected() const { return bad_macs_; }

 private:
  std::uint64_t secret_ = 0;
  int role_ = 0;
  std::uint32_t send_seq_ = 0;
  std::uint32_t recv_next_ = 0;
  std::uint64_t replays_ = 0;
  std::uint64_t bad_macs_ = 0;
};

// One WTLS-like handshake driven through opaque messages the caller
// transports (over WTP, TCP, anything):
//   client_hello -> server_hello(cert, server_pub) -> client_key_exchange
// After finish(), both sides hold matching SecureChannels.
class WtlsHandshake {
 public:
  enum class Role { kClient, kServer };

  WtlsHandshake(Role role, sim::Rng rng, std::uint64_t ca_key,
                std::optional<Certificate> my_cert = std::nullopt,
                std::uint64_t my_private = 0);

  // Client: produce the first message.
  std::string client_hello();
  // Server: consume hello, produce server_hello. nullopt = refuse.
  std::optional<std::string> on_client_hello(std::string_view msg);
  // Client: consume server_hello (verifies the certificate), produce the
  // key-exchange message and derive keys. nullopt = handshake failed.
  std::optional<std::string> on_server_hello(std::string_view msg);
  // Server: consume key exchange, derive keys.
  bool on_client_key_exchange(std::string_view msg);

  bool established() const { return established_; }
  // Valid once established: this party's bidirectional channel (seals with
  // its own role, opens the peer's).
  SecureChannel& channel() { return *channel_; }
  SecureChannel& tx() { return *channel_; }
  SecureChannel& rx() { return *channel_; }

 private:
  Role role_;
  sim::Rng rng_;
  std::uint64_t ca_key_ = 0;
  std::optional<Certificate> cert_;
  std::uint64_t my_private_ = 0;
  DhKeyPair ephemeral_;
  bool established_ = false;
  std::optional<SecureChannel> channel_;
};

}  // namespace mcs::security
