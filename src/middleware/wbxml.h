#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "middleware/markup.h"

namespace mcs::middleware {

// WBXML: the WAP Forum's binary XML encoding. The WAP gateway compiles WML
// decks to WBXML so the over-the-air representation is compact; this is the
// source of WAP's bandwidth savings measured in the Table 3 bench.
//
// Implements the WBXML 1.3 framing (version, public id, charset, string
// table, tag/attr token space with content and attribute flags, STR_I inline
// strings, LITERAL tokens backed by the string table) with the WML 1.1 tag
// and attribute code pages. Encoder and decoder are exact inverses; byte
// values for tokens outside the WML 1.1 set use the LITERAL mechanism.

// Encode a WML document to WBXML bytes.
std::string wbxml_encode(const MarkupDocument& wml);

// WML 1.1 code-page lookups (0 when the name is outside the code page and
// needs the LITERAL/string-table mechanism). Exposed so the fused
// translate_html() pipeline emits the same token stream as the encoder.
std::uint8_t wml_tag_token(std::string_view tag);
std::uint8_t wml_attr_token(std::string_view name);

// Decode WBXML bytes back to a WML document; nullopt on malformed input.
std::optional<MarkupDocument> wbxml_decode(const std::string& bytes);

}  // namespace mcs::middleware
