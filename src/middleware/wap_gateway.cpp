#include "middleware/wap_gateway.h"

#include <cstdlib>

#include "middleware/translate.h"
#include "obs/trace.h"
#include "sim/arena.h"
#include "sim/contract.h"
#include "sim/util.h"

namespace mcs::middleware {

using sim::strf;

HostResolver dotted_quad_resolver() {
  return [](const std::string& host,
            std::uint16_t port) -> std::optional<net::Endpoint> {
    const auto parts = sim::split(host, '.');
    if (parts.size() != 4) return std::nullopt;
    std::uint32_t v = 0;
    for (const auto& p : parts) {
      if (p.empty()) return std::nullopt;
      const long octet = std::strtol(p.c_str(), nullptr, 10);
      if (octet < 0 || octet > 255) return std::nullopt;
      v = (v << 8) | static_cast<std::uint32_t>(octet);
    }
    return net::Endpoint{net::IpAddress{v}, port};
  };
}

std::string wsp_encode_request(const std::string& url) { return "GET " + url; }

std::optional<std::string> wsp_decode_request(const std::string& payload) {
  if (!sim::starts_with(payload, "GET ")) return std::nullopt;
  return payload.substr(4);
}

std::string wsp_encode_response(int status, const std::string& content_type,
                                const std::string& body) {
  return strf("%d %s\n", status, content_type.c_str()) + body;
}

std::optional<WspResponse> wsp_decode_response(const std::string& payload) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  // Head-line fields as views (split-on-' ' semantics, empty fields count);
  // only the status and content type are ever read.
  const sim::Slice head{payload.data(), nl};
  sim::Slice f[2];
  std::size_t nf = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= head.size(); ++i) {
    if (i == head.size() || head[i] == ' ') {
      if (nf < 2) f[nf] = sim::Slice{head.data() + start, i - start};
      ++nf;
      start = i + 1;
    }
  }
  WspResponse r;
  // atoi semantics: leading whitespace, optional sign, digit prefix.
  std::size_t p = 0;
  while (p < f[0].size() && sim::is_ascii_space(f[0][p])) ++p;
  int sign = 1;
  if (p < f[0].size() && (f[0][p] == '+' || f[0][p] == '-')) {
    if (f[0][p] == '-') sign = -1;
    ++p;
  }
  long long v = 0;
  for (; p < f[0].size() && f[0][p] >= '0' && f[0][p] <= '9'; ++p) {
    v = v * 10 + (f[0][p] - '0');
  }
  r.status = static_cast<int>(sign * v);
  if (r.status == 0) return std::nullopt;
  if (nf > 1) r.content_type.assign(f[1].data(), f[1].size());
  r.body.assign(payload, nl + 1, std::string::npos);
  return r;
}

// ---------------------------------------------------------------------------
// WapGateway
// ---------------------------------------------------------------------------

WapGateway::WapGateway(net::Node& node, transport::UdpStack& udp,
                       transport::TcpStack& tcp, HostResolver resolver,
                       WapGatewayConfig cfg)
    : node_{node},
      cfg_{cfg},
      resolver_{std::move(resolver)},
      wtp_{udp, cfg.wtp_port, cfg.wtp},
      http_{tcp} {
  // WTLS identity: an ephemeral static key certified by the configured CA.
  sim::Rng rng{0xCE27ull ^ node.addr().v};
  wtls_key_ = security::dh_generate(rng);
  wtls_cert_ = security::issue_certificate("wap-gateway",
                                           wtls_key_.public_key,
                                           cfg_.wtls_ca_key);
  wtp_.on_invoke = [this](const std::string& payload, net::Endpoint from,
                          std::function<void(std::string)> respond) {
    on_wtp_invoke(payload, from, std::move(respond));
  };
}

void WapGateway::on_wtp_invoke(const std::string& payload, net::Endpoint from,
                               std::function<void(std::string)> respond) {
  if (sim::starts_with(payload, "WTLS-HELLO ") && cfg_.enable_wtls) {
    // Server side of the handshake; a fresh hello replaces any old session.
    security::WtlsHandshake server{security::WtlsHandshake::Role::kServer,
                                   sim::Rng{from.addr.v ^ from.port},
                                   cfg_.wtls_ca_key, wtls_cert_,
                                   wtls_key_.private_key};
    const auto shello = server.on_client_hello(
        std::string_view{payload.data() + 11, payload.size() - 11});
    if (!shello.has_value()) {
      respond("WTLS-ERR bad-hello");
      return;
    }
    wtls_channels_.erase(from);
    wtls_channels_.emplace(from, server.channel());
    ++wtls_sessions_;
    MCS_INVARIANT(wtls_sessions_ >= wtls_channels_.size(),
                  "more live WTLS channels than sessions ever created");
    respond("WTLS-SHELLO " + *shello);
    return;
  }
  if (sim::starts_with(payload, "WTLS-DATA ")) {
    auto it = wtls_channels_.find(from);
    if (it == wtls_channels_.end()) {
      respond("WTLS-ERR no-session");
      return;
    }
    const auto opened = it->second.open(
        std::string_view{payload.data() + 10, payload.size() - 10});
    if (!opened.has_value()) {
      respond("WTLS-ERR bad-record");
      return;
    }
    // The WAP gap: from here on the request is plaintext inside the gateway.
    handle_request(*opened, from,
                   [this, from, respond = std::move(respond)](
                       std::string response) mutable {
                     auto ch = wtls_channels_.find(from);
                     if (ch == wtls_channels_.end()) {
                       respond("WTLS-ERR session-lost");
                       return;
                     }
                     respond("WTLS-DATA " + ch->second.seal(response));
                   });
    return;
  }
  handle_request(payload, from, std::move(respond));
}

const host::CookieJar* WapGateway::jar_for(net::Endpoint phone) const {
  auto it = phone_jars_.find(phone);
  return it == phone_jars_.end() ? nullptr : &it->second;
}

void WapGateway::handle_request(const std::string& payload,
                                net::Endpoint from,
                                std::function<void(std::string)> respond_raw) {
  ++stats_.requests;
  obs::metric_add(m_requests_);
  // Gateway span: child of the stamped invoke (the phone's browse span).
  // The wrapped respond closes it and re-enters it so the WTP result
  // datagrams carry this context over the air.
  const obs::TraceContext gw = obs::begin_span(
      obs::Component::kMiddleware, "wap.request", node_.sim().now());
  auto respond = [this, gw, respond_raw = std::move(respond_raw)](
                     std::string response) mutable {
    obs::end_span(gw, node_.sim().now());
    obs::ActiveScope scope{gw};
    respond_raw(std::move(response));
  };
  const auto url = wsp_decode_request(payload);
  if (!url.has_value()) {
    respond(wsp_encode_response(400, "text/plain", "bad WSP request"));
    return;
  }
  const auto parsed = host::parse_url(*url);
  if (!parsed.has_value()) {
    respond(wsp_encode_response(400, "text/plain", "bad url"));
    return;
  }
  const auto upstream = resolver_(parsed->host, parsed->port);
  if (!upstream.has_value()) {
    respond(wsp_encode_response(502, "text/plain", "cannot resolve host"));
    return;
  }
  // Play the phone's cookies toward the origin server.
  const std::string origin = upstream->to_string();
  host::HttpRequest up_req;
  up_req.method = "GET";
  up_req.path = parsed->path;
  up_req.set_header("Host", origin);
  up_req.set_header("User-Agent", "mcs-wap-gateway/1.0");
  if (const std::string cookies = phone_jars_[from].cookie_header(origin);
      !cookies.empty()) {
    up_req.set_header("Cookie", cookies);
  }
  obs::ActiveScope scope{gw};
  http_.request(*upstream, up_req,
            [this, from, origin, gw, respond = std::move(respond)](
                std::optional<host::HttpResponse> resp) mutable {
    if (!resp.has_value()) {
      ++stats_.upstream_failures;
      respond(wsp_encode_response(502, "text/plain", "origin unreachable"));
      return;
    }
    stats_.html_bytes_in += resp->body.size();
    phone_jars_[from].update_from(origin, *resp);
    if (resp->status != 200) {
      respond(wsp_encode_response(resp->status, "text/plain", resp->body));
      return;
    }
    // Translate HTML -> WML, adapt, optionally compile to WBXML — after the
    // simulated translation CPU time.
    const obs::TraceContext xlate = obs::begin_child(
        gw, obs::Component::kMiddleware, "wap.translate", node_.sim().now());
    node_.sim().after(cfg_.translation_delay,
                      [this, xlate, body = std::move(resp->body),
                       respond = std::move(respond)]() mutable {
      obs::end_span(xlate, node_.sim().now());
      ++stats_.translations;
      obs::metric_add(m_translations_);
      // Fused zero-copy translation (translate.cpp): parse + translate +
      // adapt + serialize (+ WBXML) in one arena pass into reused buffers,
      // byte-identical to the legacy tree pipeline.
      translate_html(body, MarkupKind::kWml, cfg_.adaptation, wml_buf_,
                     cfg_.encode_wbxml ? &wbxml_buf_ : nullptr);
      stats_.wml_bytes_out += wml_buf_.size();
      // WSP framing, same bytes as wsp_encode_response(200, type, body).
      std::string out =
          cfg_.encode_wbxml
              ? sim::cat("200 application/vnd.wap.wmlc\n", wbxml_buf_)
              : sim::cat("200 text/vnd.wap.wml\n", wml_buf_);
      stats_.air_bytes_out += out.size();
      obs::metric_add(m_air_bytes_, out.size());
      MCS_INVARIANT(stats_.translations <= stats_.requests,
                    "gateway translated more responses than it saw requests");
      respond(std::move(out));
    });
  });
}

// ---------------------------------------------------------------------------
// IModeGateway
// ---------------------------------------------------------------------------

IModeGateway::IModeGateway(transport::TcpStack& tcp, HostResolver resolver,
                           IModeGatewayConfig cfg)
    : tcp_{tcp},
      cfg_{cfg},
      resolver_{std::move(resolver)},
      server_{tcp, cfg.port, "imode-gw/1.0"},
      http_{tcp} {
  server_.route_async(
      "GET", "/",
      [this](const host::HttpRequest& req,
             std::function<void(host::HttpResponse)> respond) {
        handle(req, std::move(respond));
      });
}

void IModeGateway::handle(const host::HttpRequest& req,
                          std::function<void(host::HttpResponse)> respond_raw) {
  ++stats_.requests;
  obs::metric_add(m_requests_);
  const obs::TraceContext gw = obs::begin_span(
      obs::Component::kMiddleware, "imode.request", tcp_.sim().now());
  auto respond = [this, gw, respond_raw = std::move(respond_raw)](
                     host::HttpResponse response) mutable {
    obs::end_span(gw, tcp_.sim().now());
    obs::ActiveScope scope{gw};
    respond_raw(std::move(response));
  };
  // The phone requests "/<host>:<port>/<path...>" through the gateway
  // (or passes an absolute URL in the path).
  std::string target = req.path;
  if (!target.empty() && target.front() == '/') target.erase(0, 1);
  const auto parsed = host::parse_url(target);
  if (!parsed.has_value()) {
    respond(host::HttpResponse::bad_request("bad target url"));
    return;
  }
  const auto upstream = resolver_(parsed->host, parsed->port);
  if (!upstream.has_value()) {
    respond(host::HttpResponse::make(502, "text/plain", "cannot resolve"));
    return;
  }
  // Cookies on behalf of the phone, keyed by its TCP endpoint.
  const std::string phone = req.header("X-Peer");
  const std::string origin = upstream->to_string();
  host::HttpRequest up_req;
  up_req.method = "GET";
  up_req.path = parsed->path;
  up_req.set_header("Host", origin);
  up_req.set_header("User-Agent", "mcs-imode-gateway/1.0");
  if (const std::string cookies = phone_jars_[phone].cookie_header(origin);
      !cookies.empty()) {
    up_req.set_header("Cookie", cookies);
  }
  obs::ActiveScope scope{gw};
  http_.request(*upstream, up_req,
            [this, phone, origin, gw, respond = std::move(respond)](
                std::optional<host::HttpResponse> resp) mutable {
    if (!resp.has_value()) {
      ++stats_.upstream_failures;
      respond(host::HttpResponse::make(502, "text/plain", "origin down"));
      return;
    }
    stats_.html_bytes_in += resp->body.size();
    phone_jars_[phone].update_from(origin, *resp);
    if (resp->status != 200) {
      respond(std::move(*resp));
      return;
    }
    const obs::TraceContext xlate = obs::begin_child(
        gw, obs::Component::kMiddleware, "imode.translate", tcp_.sim().now());
    tcp_.sim().after(cfg_.translation_delay,
                     [this, xlate, body = std::move(resp->body),
                      respond = std::move(respond)]() mutable {
      obs::end_span(xlate, tcp_.sim().now());
      // Fused zero-copy translation into the reused buffer (translate.cpp).
      translate_html(body, MarkupKind::kChtml, cfg_.adaptation, chtml_buf_);
      stats_.chtml_bytes_out += chtml_buf_.size();
      obs::metric_add(m_translations_);
      respond(host::HttpResponse::make(200, "text/html; charset=cp932",
                                       chtml_buf_));
    });
  });
}

void WapGateway::export_stats(sim::StatsSnapshot& snap,
                              const std::string& prefix) const {
  sim::StatsRegistry reg;
  reg.counter("requests").add(stats_.requests);
  reg.counter("upstream_failures").add(stats_.upstream_failures);
  reg.counter("html_bytes_in").add(stats_.html_bytes_in);
  reg.counter("wml_bytes_out").add(stats_.wml_bytes_out);
  reg.counter("air_bytes_out").add(stats_.air_bytes_out);
  reg.counter("translations").add(stats_.translations);
  reg.counter("wtls_sessions").add(wtls_sessions_);
  snap.add(prefix, reg);
}

void IModeGateway::export_stats(sim::StatsSnapshot& snap,
                                const std::string& prefix) const {
  sim::StatsRegistry reg;
  reg.counter("requests").add(stats_.requests);
  reg.counter("upstream_failures").add(stats_.upstream_failures);
  reg.counter("html_bytes_in").add(stats_.html_bytes_in);
  reg.counter("chtml_bytes_out").add(stats_.chtml_bytes_out);
  snap.add(prefix, reg);
}

}  // namespace mcs::middleware
