#include "middleware/wap_gateway.h"

#include <cstdlib>

#include "middleware/wbxml.h"
#include "obs/trace.h"
#include "sim/contract.h"
#include "sim/util.h"

namespace mcs::middleware {

using sim::strf;

HostResolver dotted_quad_resolver() {
  return [](const std::string& host,
            std::uint16_t port) -> std::optional<net::Endpoint> {
    const auto parts = sim::split(host, '.');
    if (parts.size() != 4) return std::nullopt;
    std::uint32_t v = 0;
    for (const auto& p : parts) {
      if (p.empty()) return std::nullopt;
      const long octet = std::strtol(p.c_str(), nullptr, 10);
      if (octet < 0 || octet > 255) return std::nullopt;
      v = (v << 8) | static_cast<std::uint32_t>(octet);
    }
    return net::Endpoint{net::IpAddress{v}, port};
  };
}

std::string wsp_encode_request(const std::string& url) { return "GET " + url; }

std::optional<std::string> wsp_decode_request(const std::string& payload) {
  if (!sim::starts_with(payload, "GET ")) return std::nullopt;
  return payload.substr(4);
}

std::string wsp_encode_response(int status, const std::string& content_type,
                                const std::string& body) {
  return strf("%d %s\n", status, content_type.c_str()) + body;
}

std::optional<WspResponse> wsp_decode_response(const std::string& payload) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  const auto head = sim::split(payload.substr(0, nl), ' ');
  if (head.empty()) return std::nullopt;
  WspResponse r;
  r.status = std::atoi(head[0].c_str());
  if (r.status == 0) return std::nullopt;
  if (head.size() > 1) r.content_type = head[1];
  r.body = payload.substr(nl + 1);
  return r;
}

// ---------------------------------------------------------------------------
// WapGateway
// ---------------------------------------------------------------------------

WapGateway::WapGateway(net::Node& node, transport::UdpStack& udp,
                       transport::TcpStack& tcp, HostResolver resolver,
                       WapGatewayConfig cfg)
    : node_{node},
      cfg_{cfg},
      resolver_{std::move(resolver)},
      wtp_{udp, cfg.wtp_port, cfg.wtp},
      http_{tcp} {
  // WTLS identity: an ephemeral static key certified by the configured CA.
  sim::Rng rng{0xCE27ull ^ node.addr().v};
  wtls_key_ = security::dh_generate(rng);
  wtls_cert_ = security::issue_certificate("wap-gateway",
                                           wtls_key_.public_key,
                                           cfg_.wtls_ca_key);
  wtp_.on_invoke = [this](const std::string& payload, net::Endpoint from,
                          std::function<void(std::string)> respond) {
    on_wtp_invoke(payload, from, std::move(respond));
  };
}

void WapGateway::on_wtp_invoke(const std::string& payload, net::Endpoint from,
                               std::function<void(std::string)> respond) {
  if (sim::starts_with(payload, "WTLS-HELLO ") && cfg_.enable_wtls) {
    // Server side of the handshake; a fresh hello replaces any old session.
    security::WtlsHandshake server{security::WtlsHandshake::Role::kServer,
                                   sim::Rng{from.addr.v ^ from.port},
                                   cfg_.wtls_ca_key, wtls_cert_,
                                   wtls_key_.private_key};
    const auto shello = server.on_client_hello(payload.substr(11));
    if (!shello.has_value()) {
      respond("WTLS-ERR bad-hello");
      return;
    }
    wtls_channels_.erase(from);
    wtls_channels_.emplace(from, server.channel());
    ++wtls_sessions_;
    MCS_INVARIANT(wtls_sessions_ >= wtls_channels_.size(),
                  "more live WTLS channels than sessions ever created");
    respond("WTLS-SHELLO " + *shello);
    return;
  }
  if (sim::starts_with(payload, "WTLS-DATA ")) {
    auto it = wtls_channels_.find(from);
    if (it == wtls_channels_.end()) {
      respond("WTLS-ERR no-session");
      return;
    }
    const auto opened = it->second.open(payload.substr(10));
    if (!opened.has_value()) {
      respond("WTLS-ERR bad-record");
      return;
    }
    // The WAP gap: from here on the request is plaintext inside the gateway.
    handle_request(*opened, from,
                   [this, from, respond = std::move(respond)](
                       std::string response) mutable {
                     auto ch = wtls_channels_.find(from);
                     if (ch == wtls_channels_.end()) {
                       respond("WTLS-ERR session-lost");
                       return;
                     }
                     respond("WTLS-DATA " + ch->second.seal(response));
                   });
    return;
  }
  handle_request(payload, from, std::move(respond));
}

const host::CookieJar* WapGateway::jar_for(net::Endpoint phone) const {
  auto it = phone_jars_.find(phone);
  return it == phone_jars_.end() ? nullptr : &it->second;
}

void WapGateway::handle_request(const std::string& payload,
                                net::Endpoint from,
                                std::function<void(std::string)> respond_raw) {
  ++stats_.requests;
  // Gateway span: child of the stamped invoke (the phone's browse span).
  // The wrapped respond closes it and re-enters it so the WTP result
  // datagrams carry this context over the air.
  const obs::TraceContext gw = obs::begin_span(
      obs::Component::kMiddleware, "wap.request", node_.sim().now());
  auto respond = [this, gw, respond_raw = std::move(respond_raw)](
                     std::string response) mutable {
    obs::end_span(gw, node_.sim().now());
    obs::ActiveScope scope{gw};
    respond_raw(std::move(response));
  };
  const auto url = wsp_decode_request(payload);
  if (!url.has_value()) {
    respond(wsp_encode_response(400, "text/plain", "bad WSP request"));
    return;
  }
  const auto parsed = host::parse_url(*url);
  if (!parsed.has_value()) {
    respond(wsp_encode_response(400, "text/plain", "bad url"));
    return;
  }
  const auto upstream = resolver_(parsed->host, parsed->port);
  if (!upstream.has_value()) {
    respond(wsp_encode_response(502, "text/plain", "cannot resolve host"));
    return;
  }
  // Play the phone's cookies toward the origin server.
  const std::string origin = upstream->to_string();
  host::HttpRequest up_req;
  up_req.method = "GET";
  up_req.path = parsed->path;
  up_req.set_header("Host", origin);
  up_req.set_header("User-Agent", "mcs-wap-gateway/1.0");
  if (const std::string cookies = phone_jars_[from].cookie_header(origin);
      !cookies.empty()) {
    up_req.set_header("Cookie", cookies);
  }
  obs::ActiveScope scope{gw};
  http_.request(*upstream, up_req,
            [this, from, origin, gw, respond = std::move(respond)](
                std::optional<host::HttpResponse> resp) mutable {
    if (!resp.has_value()) {
      ++stats_.upstream_failures;
      respond(wsp_encode_response(502, "text/plain", "origin unreachable"));
      return;
    }
    stats_.html_bytes_in += resp->body.size();
    phone_jars_[from].update_from(origin, *resp);
    if (resp->status != 200) {
      respond(wsp_encode_response(resp->status, "text/plain", resp->body));
      return;
    }
    // Translate HTML -> WML, adapt, optionally compile to WBXML — after the
    // simulated translation CPU time.
    const obs::TraceContext xlate = obs::begin_child(
        gw, obs::Component::kMiddleware, "wap.translate", node_.sim().now());
    node_.sim().after(cfg_.translation_delay,
                      [this, xlate, body = std::move(resp->body),
                       respond = std::move(respond)]() mutable {
      obs::end_span(xlate, node_.sim().now());
      ++stats_.translations;
      const MarkupDocument html = parse_markup(body, MarkupKind::kHtml);
      const MarkupDocument wml = html_to_wml(html);
      const AdaptationResult adapted = adapt_document(wml, cfg_.adaptation);
      const std::string wml_text = adapted.document.serialize();
      stats_.wml_bytes_out += wml_text.size();
      std::string out;
      if (cfg_.encode_wbxml) {
        out = wsp_encode_response(200, "application/vnd.wap.wmlc",
                                  wbxml_encode(adapted.document));
      } else {
        out = wsp_encode_response(200, "text/vnd.wap.wml", wml_text);
      }
      stats_.air_bytes_out += out.size();
      MCS_INVARIANT(stats_.translations <= stats_.requests,
                    "gateway translated more responses than it saw requests");
      respond(std::move(out));
    });
  });
}

// ---------------------------------------------------------------------------
// IModeGateway
// ---------------------------------------------------------------------------

IModeGateway::IModeGateway(transport::TcpStack& tcp, HostResolver resolver,
                           IModeGatewayConfig cfg)
    : tcp_{tcp},
      cfg_{cfg},
      resolver_{std::move(resolver)},
      server_{tcp, cfg.port, "imode-gw/1.0"},
      http_{tcp} {
  server_.route_async(
      "GET", "/",
      [this](const host::HttpRequest& req,
             std::function<void(host::HttpResponse)> respond) {
        handle(req, std::move(respond));
      });
}

void IModeGateway::handle(const host::HttpRequest& req,
                          std::function<void(host::HttpResponse)> respond_raw) {
  ++stats_.requests;
  const obs::TraceContext gw = obs::begin_span(
      obs::Component::kMiddleware, "imode.request", tcp_.sim().now());
  auto respond = [this, gw, respond_raw = std::move(respond_raw)](
                     host::HttpResponse response) mutable {
    obs::end_span(gw, tcp_.sim().now());
    obs::ActiveScope scope{gw};
    respond_raw(std::move(response));
  };
  // The phone requests "/<host>:<port>/<path...>" through the gateway
  // (or passes an absolute URL in the path).
  std::string target = req.path;
  if (!target.empty() && target.front() == '/') target.erase(0, 1);
  const auto parsed = host::parse_url(target);
  if (!parsed.has_value()) {
    respond(host::HttpResponse::bad_request("bad target url"));
    return;
  }
  const auto upstream = resolver_(parsed->host, parsed->port);
  if (!upstream.has_value()) {
    respond(host::HttpResponse::make(502, "text/plain", "cannot resolve"));
    return;
  }
  // Cookies on behalf of the phone, keyed by its TCP endpoint.
  const std::string phone = req.header("X-Peer");
  const std::string origin = upstream->to_string();
  host::HttpRequest up_req;
  up_req.method = "GET";
  up_req.path = parsed->path;
  up_req.set_header("Host", origin);
  up_req.set_header("User-Agent", "mcs-imode-gateway/1.0");
  if (const std::string cookies = phone_jars_[phone].cookie_header(origin);
      !cookies.empty()) {
    up_req.set_header("Cookie", cookies);
  }
  obs::ActiveScope scope{gw};
  http_.request(*upstream, up_req,
            [this, phone, origin, gw, respond = std::move(respond)](
                std::optional<host::HttpResponse> resp) mutable {
    if (!resp.has_value()) {
      ++stats_.upstream_failures;
      respond(host::HttpResponse::make(502, "text/plain", "origin down"));
      return;
    }
    stats_.html_bytes_in += resp->body.size();
    phone_jars_[phone].update_from(origin, *resp);
    if (resp->status != 200) {
      respond(std::move(*resp));
      return;
    }
    const obs::TraceContext xlate = obs::begin_child(
        gw, obs::Component::kMiddleware, "imode.translate", tcp_.sim().now());
    tcp_.sim().after(cfg_.translation_delay,
                     [this, xlate, body = std::move(resp->body),
                      respond = std::move(respond)]() mutable {
      obs::end_span(xlate, tcp_.sim().now());
      const MarkupDocument html = parse_markup(body, MarkupKind::kHtml);
      const MarkupDocument chtml = html_to_chtml(html);
      const AdaptationResult adapted = adapt_document(chtml, cfg_.adaptation);
      std::string out = adapted.document.serialize();
      stats_.chtml_bytes_out += out.size();
      respond(host::HttpResponse::make(200, "text/html; charset=cp932",
                                       std::move(out)));
    });
  });
}

void WapGateway::export_stats(sim::StatsSnapshot& snap,
                              const std::string& prefix) const {
  sim::StatsRegistry reg;
  reg.counter("requests").add(stats_.requests);
  reg.counter("upstream_failures").add(stats_.upstream_failures);
  reg.counter("html_bytes_in").add(stats_.html_bytes_in);
  reg.counter("wml_bytes_out").add(stats_.wml_bytes_out);
  reg.counter("air_bytes_out").add(stats_.air_bytes_out);
  reg.counter("translations").add(stats_.translations);
  reg.counter("wtls_sessions").add(wtls_sessions_);
  snap.add(prefix, reg);
}

void IModeGateway::export_stats(sim::StatsSnapshot& snap,
                                const std::string& prefix) const {
  sim::StatsRegistry reg;
  reg.counter("requests").add(stats_.requests);
  reg.counter("upstream_failures").add(stats_.upstream_failures);
  reg.counter("html_bytes_in").add(stats_.html_bytes_in);
  reg.counter("chtml_bytes_out").add(stats_.chtml_bytes_out);
  snap.add(prefix, reg);
}

}  // namespace mcs::middleware
