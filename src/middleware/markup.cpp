#include "middleware/markup.h"

#include <algorithm>

#include "sim/arena.h"
#include "sim/contract.h"
#include "sim/util.h"

namespace mcs::middleware {

namespace {

bool is_void_tag(const std::string& tag) {
  static const char* kVoid[] = {"br", "img", "hr", "input", "meta",
                                "link", "base", "area", "col"};
  return std::any_of(std::begin(kVoid), std::end(kVoid),
                     [&](const char* v) { return tag == v; });
}

bool is_raw_text_tag(const std::string& tag) {
  return tag == "script" || tag == "style";
}

}  // namespace

const char* markup_kind_name(MarkupKind k) {
  switch (k) {
    case MarkupKind::kHtml: return "html";
    case MarkupKind::kWml: return "wml";
    case MarkupKind::kChtml: return "chtml";
  }
  return "?";
}

const std::string* MarkupNode::attr(const std::string& name) const {
  for (const auto& [k, v] : attrs) {
    if (k == name) return &v;
  }
  return nullptr;
}

void MarkupNode::set_attr(const std::string& name, const std::string& value) {
  MCS_ASSERT(!name.empty(),
             "attributes are keyed by name; an unnamed attribute could "
             "never be read back or serialized");
  for (auto& [k, v] : attrs) {
    if (k == name) {
      v = value;
      return;
    }
  }
  attrs.emplace_back(name, value);
}

const MarkupNode* MarkupNode::find(const std::string& tag_name) const {
  if (tag == tag_name) return this;
  for (const auto& c : children) {
    if (const MarkupNode* hit = c.find(tag_name); hit != nullptr) return hit;
  }
  return nullptr;
}

std::string MarkupNode::inner_text() const {
  return sim::build(text.size() + 16,
                    [&](std::string& out) { inner_text_into(out); });
}

void MarkupNode::inner_text_into(std::string& out) const {
  // `text` is empty on elements; the synthetic root (empty tag, children)
  // must recurse like an element, so no is_text() shortcut here.
  out += text;
  for (const auto& c : children) c.inner_text_into(out);
}

std::size_t MarkupNode::element_count() const {
  std::size_t n = is_text() ? 0 : 1;
  for (const auto& c : children) n += c.element_count();
  return n;
}

namespace {

void serialize_node(const MarkupNode& n, std::string& out) {
  if (n.is_text()) {
    out += n.text;
    return;
  }
  out += '<' + n.tag;
  for (const auto& [k, v] : n.attrs) {
    out += ' ' + k + "=\"" + v + "\"";
  }
  if (n.children.empty() && is_void_tag(n.tag)) {
    out += "/>";
    return;
  }
  out += '>';
  for (const auto& c : n.children) serialize_node(c, out);
  out += "</" + n.tag + ">";
}

}  // namespace

std::string MarkupDocument::serialize() const {
  return sim::build(256, [&](std::string& out) {
    for (const auto& c : root.children) serialize_node(c, out);
  });
}

std::string MarkupDocument::title() const {
  const MarkupNode* t = root.find("title");
  if (t != nullptr) return sim::cat(sim::trim_view(t->inner_text()));
  // WML keeps the title on the card element.
  const MarkupNode* card = root.find("card");
  if (card != nullptr) {
    if (const std::string* v = card->attr("title"); v != nullptr) return *v;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& src) : src_{src} {}

  MarkupNode parse() {
    MarkupNode root;
    stack_.push_back(&root);
    while (pos_ < src_.size()) {
      if (src_[pos_] == '<') {
        parse_tag();
      } else {
        parse_text();
      }
    }
    return root;
  }

 private:
  MarkupNode* top() { return stack_.back(); }

  void parse_text() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '<') ++pos_;
    std::string t = src_.substr(start, pos_ - start);
    // Collapse pure-whitespace runs between tags; keep meaningful text.
    if (sim::trim_view(t).empty()) return;
    top()->children.push_back(MarkupNode::text_node(std::move(t)));
  }

  void parse_tag() {
    // pos_ at '<'
    if (src_.compare(pos_, 4, "<!--") == 0) {
      const std::size_t end = src_.find("-->", pos_);
      pos_ = end == std::string::npos ? src_.size() : end + 3;
      return;
    }
    if (pos_ + 1 < src_.size() && (src_[pos_ + 1] == '!' || src_[pos_ + 1] == '?')) {
      const std::size_t end = src_.find('>', pos_);
      pos_ = end == std::string::npos ? src_.size() : end + 1;
      return;
    }
    if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
      // End tag.
      const std::size_t end = src_.find('>', pos_);
      std::string name = sim::to_lower(
          sim::trim(src_.substr(pos_ + 2, end - pos_ - 2)));
      pos_ = end == std::string::npos ? src_.size() : end + 1;
      close_tag(name);
      return;
    }
    // Start tag.
    const std::size_t end = find_tag_end(pos_);
    if (end == std::string::npos) {
      pos_ = src_.size();
      return;
    }
    std::string inside = src_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    bool self_closing = false;
    if (!inside.empty() && inside.back() == '/') {
      self_closing = true;
      inside.pop_back();
    }
    MarkupNode node;
    std::size_t i = 0;
    while (i < inside.size() && !std::isspace(static_cast<unsigned char>(inside[i]))) {
      ++i;
    }
    node.tag = sim::to_lower(inside.substr(0, i));
    if (node.tag.empty()) return;
    parse_attrs(inside.substr(i), node);

    if (is_raw_text_tag(node.tag) && !self_closing) {
      // Swallow raw content up to the matching close tag.
      const std::string close = "</" + node.tag;
      std::size_t raw_end = src_.find(close, pos_);
      if (raw_end == std::string::npos) raw_end = src_.size();
      std::string raw = src_.substr(pos_, raw_end - pos_);
      if (!raw.empty()) {
        node.children.push_back(MarkupNode::text_node(std::move(raw)));
      }
      const std::size_t gt = src_.find('>', raw_end);
      pos_ = gt == std::string::npos ? src_.size() : gt + 1;
      top()->children.push_back(std::move(node));
      return;
    }

    top()->children.push_back(std::move(node));
    if (!self_closing && !is_void_tag(top()->children.back().tag)) {
      stack_.push_back(&top()->children.back());
    }
  }

  // '>' that terminates the tag, respecting quoted attribute values.
  std::size_t find_tag_end(std::size_t start) const {
    char quote = 0;
    for (std::size_t i = start + 1; i < src_.size(); ++i) {
      const char c = src_[i];
      if (quote != 0) {
        if (c == quote) quote = 0;
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        return i;
      }
    }
    return std::string::npos;
  }

  void parse_attrs(const std::string& s, MarkupNode& node) {
    std::size_t i = 0;
    while (i < s.size()) {
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
      if (i >= s.size()) break;
      const std::size_t name_start = i;
      while (i < s.size() && s[i] != '=' && s[i] != ' ' && s[i] != '\t' &&
             s[i] != '\n') {
        ++i;
      }
      std::string name = sim::to_lower(s.substr(name_start, i - name_start));
      std::string value;
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
      if (i < s.size() && s[i] == '=') {
        ++i;
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
          ++i;
        }
        if (i < s.size() && (s[i] == '"' || s[i] == '\'')) {
          const char q = s[i++];
          const std::size_t vstart = i;
          while (i < s.size() && s[i] != q) ++i;
          value = s.substr(vstart, i - vstart);
          if (i < s.size()) ++i;
        } else {
          const std::size_t vstart = i;
          while (i < s.size() &&
                 !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
          }
          value = s.substr(vstart, i - vstart);
        }
      }
      if (!name.empty()) node.attrs.emplace_back(std::move(name), std::move(value));
    }
  }

  void close_tag(const std::string& name) {
    // Find the nearest open ancestor with this tag; unwind to it. If none,
    // ignore the stray end tag (tag-soup tolerance).
    for (std::size_t i = stack_.size(); i-- > 1;) {
      if (stack_[i]->tag == name) {
        stack_.resize(i);
        return;
      }
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  std::vector<MarkupNode*> stack_;
};

}  // namespace

MarkupDocument parse_markup(const std::string& source, MarkupKind kind) {
  MarkupDocument doc;
  doc.kind = kind;
  doc.root = Parser{source}.parse();
  return doc;
}

// ---------------------------------------------------------------------------
// Translations
// ---------------------------------------------------------------------------

namespace {

// Shared recursive body translation. `wml` selects WML output conventions
// (true) or cHTML (false).
void translate_children(const MarkupNode& from, MarkupNode& to, bool wml);

void translate_node(const MarkupNode& n, MarkupNode& out, bool wml) {
  if (n.is_text()) {
    out.children.push_back(MarkupNode::text_node(n.text));
    return;
  }
  const std::string& t = n.tag;
  if (t == "script" || t == "style" || t == "head" || t == "title" ||
      t == "meta" || t == "link" || t == "iframe" || t == "frameset" ||
      t == "object" || t == "applet") {
    return;  // not representable on the handset
  }
  if (t == "p" || t == "div" || t == "section" || t == "article" ||
      t == "blockquote" || t == "center") {
    MarkupNode p = MarkupNode::element("p");
    translate_children(n, p, wml);
    if (!p.children.empty()) out.children.push_back(std::move(p));
    return;
  }
  if (t.size() == 2 && t[0] == 'h' && t[1] >= '1' && t[1] <= '6') {
    // Headings become emphasized paragraphs.
    MarkupNode p = MarkupNode::element("p");
    MarkupNode b = MarkupNode::element("b");
    translate_children(n, b, wml);
    p.children.push_back(std::move(b));
    out.children.push_back(std::move(p));
    return;
  }
  if (t == "a") {
    MarkupNode a = MarkupNode::element("a");
    if (const std::string* href = n.attr("href"); href != nullptr) {
      a.set_attr("href", *href);
    }
    translate_children(n, a, wml);
    out.children.push_back(std::move(a));
    return;
  }
  if (t == "b" || t == "strong") {
    MarkupNode b = MarkupNode::element("b");
    translate_children(n, b, wml);
    out.children.push_back(std::move(b));
    return;
  }
  if (t == "i" || t == "em") {
    MarkupNode i = MarkupNode::element("i");
    translate_children(n, i, wml);
    out.children.push_back(std::move(i));
    return;
  }
  if (t == "u") {
    MarkupNode u = MarkupNode::element("u");
    translate_children(n, u, wml);
    out.children.push_back(std::move(u));
    return;
  }
  if (t == "br") {
    out.children.push_back(MarkupNode::element("br"));
    return;
  }
  if (t == "img") {
    if (wml) {
      // WML decks drop images; keep the alt text so nothing is lost.
      if (const std::string* alt = n.attr("alt");
          alt != nullptr && !alt->empty()) {
        out.children.push_back(MarkupNode::text_node("[" + *alt + "]"));
      }
    } else {
      // cHTML supports inline images.
      MarkupNode img = MarkupNode::element("img");
      if (const std::string* src = n.attr("src")) img.set_attr("src", *src);
      if (const std::string* alt = n.attr("alt")) img.set_attr("alt", *alt);
      out.children.push_back(std::move(img));
    }
    return;
  }
  if (t == "table") {
    // Linearize: one paragraph per row, cells joined with separators.
    for (const auto& section : n.children) {
      const auto handle_row = [&](const MarkupNode& row) {
        if (row.tag != "tr") return;
        MarkupNode p = MarkupNode::element("p");
        std::string line;
        for (const auto& cell : row.children) {
          if (cell.tag != "td" && cell.tag != "th") continue;
          const std::string text = sim::trim(cell.inner_text());
          if (text.empty()) continue;
          if (!line.empty()) line += " | ";
          line += text;
        }
        if (!line.empty()) {
          p.children.push_back(MarkupNode::text_node(std::move(line)));
          out.children.push_back(std::move(p));
        }
      };
      if (section.tag == "tr") {
        handle_row(section);
      } else {  // thead/tbody/tfoot
        for (const auto& row : section.children) handle_row(row);
      }
    }
    return;
  }
  if (t == "ul" || t == "ol") {
    int index = 1;
    for (const auto& li : n.children) {
      if (li.tag != "li") continue;
      MarkupNode p = MarkupNode::element("p");
      const std::string bullet =
          t == "ol" ? sim::strf("%d. ", index++) : std::string{"- "};
      p.children.push_back(MarkupNode::text_node(bullet));
      translate_children(li, p, wml);
      out.children.push_back(std::move(p));
    }
    return;
  }
  if (t == "input") {
    MarkupNode input = MarkupNode::element("input");
    if (const std::string* name = n.attr("name")) input.set_attr("name", *name);
    if (const std::string* type = n.attr("type")) input.set_attr("type", *type);
    if (const std::string* value = n.attr("value")) {
      input.set_attr("value", *value);
    }
    out.children.push_back(std::move(input));
    return;
  }
  if (t == "select" || t == "option") {
    MarkupNode copy = MarkupNode::element(t);
    if (const std::string* name = n.attr("name")) copy.set_attr("name", *name);
    if (const std::string* value = n.attr("value")) {
      copy.set_attr("value", *value);
    }
    translate_children(n, copy, wml);
    out.children.push_back(std::move(copy));
    return;
  }
  if (t == "form") {
    // Forms flatten into their controls; submission becomes an anchor.
    MarkupNode p = MarkupNode::element("p");
    translate_children(n, p, wml);
    if (const std::string* action = n.attr("action"); action != nullptr) {
      MarkupNode a = MarkupNode::element("a");
      a.set_attr("href", *action);
      a.children.push_back(MarkupNode::text_node("[submit]"));
      p.children.push_back(std::move(a));
    }
    out.children.push_back(std::move(p));
    return;
  }
  // Unknown/structural tag (html, body, span, ...): unwrap.
  translate_children(n, out, wml);
}

void translate_children(const MarkupNode& from, MarkupNode& to, bool wml) {
  for (const auto& c : from.children) translate_node(c, to, wml);
}

// WML requires cards to contain only certain top-level elements; wrap any
// loose inline content in paragraphs.
void wrap_loose_inline(MarkupNode& card) {
  std::vector<MarkupNode> fixed;
  for (auto& c : card.children) {
    const bool block = c.tag == "p" || c.tag == "do" || c.tag == "template";
    if (block) {
      fixed.push_back(std::move(c));
    } else {
      if (fixed.empty() || fixed.back().tag != "p" ||
          fixed.back().attr("synthetic") == nullptr) {
        MarkupNode p = MarkupNode::element("p");
        p.set_attr("synthetic", "1");
        fixed.push_back(std::move(p));
      }
      fixed.back().children.push_back(std::move(c));
    }
  }
  // Strip the marker attribute.
  for (auto& c : fixed) {
    if (c.tag == "p" && c.attr("synthetic") != nullptr) {
      std::erase_if(c.attrs, [](const auto& kv) { return kv.first == "synthetic"; });
    }
  }
  card.children = std::move(fixed);
}

}  // namespace

MarkupDocument html_to_wml(const MarkupDocument& html) {
  MarkupDocument out;
  out.kind = MarkupKind::kWml;
  MarkupNode wml = MarkupNode::element("wml");
  MarkupNode card = MarkupNode::element("card");
  card.set_attr("id", "main");
  const std::string title = html.title();
  if (!title.empty()) card.set_attr("title", title);
  translate_children(html.root, card, /*wml=*/true);
  wrap_loose_inline(card);
  wml.children.push_back(std::move(card));
  out.root.children.push_back(std::move(wml));
  return out;
}

MarkupDocument html_to_chtml(const MarkupDocument& html) {
  MarkupDocument out;
  out.kind = MarkupKind::kChtml;
  MarkupNode root = MarkupNode::element("html");
  MarkupNode body = MarkupNode::element("body");
  translate_children(html.root, body, /*wml=*/false);
  root.children.push_back(std::move(body));
  out.root.children.push_back(std::move(root));
  return out;
}

}  // namespace mcs::middleware
