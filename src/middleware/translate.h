#pragma once

#include <string>

#include "middleware/adaptation.h"
#include "middleware/markup.h"
#include "sim/arena.h"

namespace mcs::middleware {

// What the fused pass did to the content, mirroring AdaptationResult's
// counters (the legacy tree pipeline reports the same numbers).
struct TranslateCounters {
  std::size_t text_truncations = 0;
  std::size_t images_dropped = 0;
  std::size_t nodes_dropped = 0;
};

// One-pass zero-copy gateway translation (DESIGN.md §12). Parses `html`
// into a per-request recycled arena — tag names, attributes, and text are
// slices into the source, not string copies — then applies the §5.1
// translation rules fused with content adaptation (text truncation, image
// handling, the serialized-size cap) and serializes the adapted document
// into `text_out`. The output is byte-identical to the legacy
// parse_markup + html_to_wml/html_to_chtml + adapt_document + serialize()
// pipeline; the translate equivalence tests assert this over the corpus
// and randomized documents.
//
// `target` selects WML (WAP gateway) or cHTML (i-mode gateway). When
// `wbxml_out` is non-null the same adapted deck is also compiled to WBXML
// (WML target only), byte-identical to wbxml_encode(). Both output buffers
// are cleared then appended to; callers keep them across requests so
// steady-state translation performs no heap allocation once buffers and
// arena chunks are warm.
TranslateCounters translate_html(sim::Slice html, MarkupKind target,
                                 const AdaptationConfig& cfg,
                                 std::string& text_out,
                                 std::string* wbxml_out = nullptr);

}  // namespace mcs::middleware
