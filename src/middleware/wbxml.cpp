#include "middleware/wbxml.h"

#include <cstdint>
#include <map>
#include <vector>

#include "sim/contract.h"

namespace mcs::middleware {

namespace {

// WBXML global tokens.
constexpr std::uint8_t kEnd = 0x01;
constexpr std::uint8_t kStrI = 0x03;     // inline NUL-terminated string
constexpr std::uint8_t kLiteral = 0x04;  // tag from string table
constexpr std::uint8_t kLiteralC = 0x44; // literal with content
constexpr std::uint8_t kContentFlag = 0x40;

constexpr std::uint8_t kVersion13 = 0x03;
constexpr std::uint8_t kPublicIdWml11 = 0x04;
constexpr std::uint8_t kCharsetUtf8 = 0x6A;

// WML 1.1 tag tokens (code page 0), per the WAP binary XML content format.
// Transparent comparator: the fused pipeline looks names up by slice.
const std::map<std::string, std::uint8_t, std::less<>>& tag_tokens() {
  static const std::map<std::string, std::uint8_t, std::less<>> kTags = {
      {"a", 0x1C},       {"td", 0x1D},     {"tr", 0x1E},    {"table", 0x1F},
      {"p", 0x20},       {"postfield", 0x21}, {"anchor", 0x22},
      {"access", 0x23},  {"b", 0x24},      {"big", 0x25},   {"br", 0x26},
      {"card", 0x27},    {"do", 0x28},     {"em", 0x29},    {"fieldset", 0x2A},
      {"go", 0x2B},      {"head", 0x2C},   {"i", 0x2D},     {"img", 0x2E},
      {"input", 0x2F},   {"meta", 0x30},   {"noop", 0x31},  {"prev", 0x32},
      {"onevent", 0x33}, {"optgroup", 0x34}, {"option", 0x35},
      {"refresh", 0x36}, {"select", 0x37}, {"small", 0x38}, {"strong", 0x39},
      {"template", 0x3B}, {"timer", 0x3C}, {"u", 0x3D},     {"setvar", 0x3E},
      {"wml", 0x3F},
  };
  return kTags;
}

// WML 1.1 attribute-start tokens (value encoded separately as STR_I).
const std::map<std::string, std::uint8_t, std::less<>>& attr_tokens() {
  static const std::map<std::string, std::uint8_t, std::less<>> kAttrs = {
      {"accept-charset", 0x05}, {"align", 0x52},  {"alt", 0x0C},
      {"class", 0x54},          {"columns", 0x53}, {"domain", 0x0F},
      {"emptyok", 0x10},        {"format", 0x12}, {"height", 0x13},
      {"href", 0x4A},           {"id", 0x55},     {"label", 0x18},
      {"maxlength", 0x1A},      {"method", 0x1B}, {"mode", 0x1C},
      {"multiple", 0x1D},       {"name", 0x1E},   {"optional", 0x21},
      {"path", 0x22},           {"src", 0x32},    {"title", 0x36},
      {"type", 0x37},           {"value", 0x39},  {"width", 0x3E},
  };
  return kAttrs;
}

void write_mb_u32(std::string& out, std::uint32_t v) {
  // Multi-byte unsigned integer, 7 bits per byte, high bit = continuation.
  char buf[5];
  int n = 0;
  do {
    buf[n++] = static_cast<char>(v & 0x7F);
    v >>= 7;
  } while (v != 0);
  for (int i = n - 1; i >= 0; --i) {
    char c = buf[i];
    if (i != 0) c = static_cast<char>(c | 0x80);
    out.push_back(c);
  }
}

class Encoder {
 public:
  std::string encode(const MarkupDocument& doc) {
    std::string body;
    for (const auto& c : doc.root.children) encode_node(c, body);

    std::string out;
    out.push_back(static_cast<char>(kVersion13));
    out.push_back(static_cast<char>(kPublicIdWml11));
    out.push_back(static_cast<char>(kCharsetUtf8));
    write_mb_u32(out, static_cast<std::uint32_t>(string_table_.size()));
    out += string_table_;
    out += body;
    // Header is version + public id + charset + at least a one-byte string
    // table length; a shorter result is not decodable WBXML.
    MCS_INVARIANT(out.size() >= 4 + string_table_.size(),
                  "encoded document lost its header or string table");
    return out;
  }

 private:
  std::uint32_t intern(const std::string& s) {
    auto it = offsets_.find(s);
    if (it != offsets_.end()) return it->second;
    const auto off = static_cast<std::uint32_t>(string_table_.size());
    string_table_ += s;
    string_table_.push_back('\0');
    offsets_[s] = off;
    return off;
  }

  void write_str_i(std::string& out, const std::string& s) {
    out.push_back(static_cast<char>(kStrI));
    out += s;
    out.push_back('\0');
  }

  void encode_node(const MarkupNode& n, std::string& out) {
    if (n.is_text()) {
      write_str_i(out, n.text);
      return;
    }
    const bool has_content = !n.children.empty();
    const bool has_attrs = !n.attrs.empty();
    const auto& tags = tag_tokens();
    auto it = tags.find(n.tag);
    std::uint8_t token;
    bool literal = false;
    if (it != tags.end()) {
      token = it->second;
    } else {
      token = kLiteral;
      literal = true;
    }
    if (has_content) token |= kContentFlag;
    if (has_attrs) token |= 0x80;
    out.push_back(static_cast<char>(token));
    if (literal) write_mb_u32(out, intern(n.tag));

    if (has_attrs) {
      const auto& attrs = attr_tokens();
      for (const auto& [k, v] : n.attrs) {
        auto at = attrs.find(k);
        if (at != attrs.end()) {
          out.push_back(static_cast<char>(at->second));
        } else {
          out.push_back(static_cast<char>(kLiteral));
          write_mb_u32(out, intern(k));
        }
        if (!v.empty()) write_str_i(out, v);
      }
      out.push_back(static_cast<char>(kEnd));
    }
    if (has_content) {
      for (const auto& c : n.children) encode_node(c, out);
      out.push_back(static_cast<char>(kEnd));
    }
  }

  std::string string_table_;
  std::map<std::string, std::uint32_t> offsets_;
};

class Decoder {
 public:
  explicit Decoder(const std::string& bytes) : b_{bytes} {}

  std::optional<MarkupDocument> decode() {
    if (!take_header()) return std::nullopt;
    MarkupDocument doc;
    doc.kind = MarkupKind::kWml;
    while (pos_ < b_.size()) {
      auto node = decode_node();
      if (!node.has_value()) return std::nullopt;
      doc.root.children.push_back(std::move(*node));
    }
    return doc;
  }

 private:
  bool take_header() {
    if (b_.size() < 4) return false;
    if (static_cast<std::uint8_t>(b_[0]) != kVersion13) return false;
    pos_ = 1;
    (void)read_mb_u32();  // public id
    (void)read_mb_u32();  // charset
    const std::uint32_t st_len = read_mb_u32();
    if (pos_ + st_len > b_.size()) return false;
    string_table_ = b_.substr(pos_, st_len);
    pos_ += st_len;
    return !failed_;
  }

  std::uint32_t read_mb_u32() {
    std::uint32_t v = 0;
    while (pos_ < b_.size()) {
      const auto c = static_cast<std::uint8_t>(b_[pos_++]);
      v = (v << 7) | (c & 0x7F);
      if ((c & 0x80) == 0) return v;
    }
    failed_ = true;
    return 0;
  }

  std::string read_cstr() {
    std::string out;
    while (pos_ < b_.size() && b_[pos_] != '\0') out.push_back(b_[pos_++]);
    if (pos_ < b_.size()) ++pos_;  // consume NUL
    return out;
  }

  std::string table_string(std::uint32_t offset) const {
    if (offset >= string_table_.size()) return "";
    const std::size_t end = string_table_.find('\0', offset);
    return string_table_.substr(offset, end - offset);
  }

  std::string tag_for(std::uint8_t token) const {
    for (const auto& [name, t] : tag_tokens()) {
      if (t == token) return name;
    }
    return "";
  }

  std::string attr_for(std::uint8_t token) const {
    for (const auto& [name, t] : attr_tokens()) {
      if (t == token) return name;
    }
    return "";
  }

  std::optional<MarkupNode> decode_node() {
    if (pos_ >= b_.size()) return std::nullopt;
    const auto token = static_cast<std::uint8_t>(b_[pos_++]);
    if (token == kStrI) {
      return MarkupNode::text_node(read_cstr());
    }
    const bool has_attrs = (token & 0x80) != 0;
    const bool has_content = (token & kContentFlag) != 0;
    const std::uint8_t base = token & 0x3F;
    MarkupNode node;
    if (base == kLiteral) {
      node.tag = table_string(read_mb_u32());
    } else {
      node.tag = tag_for(base);
      if (node.tag.empty()) return std::nullopt;
    }
    if (has_attrs) {
      while (pos_ < b_.size() &&
             static_cast<std::uint8_t>(b_[pos_]) != kEnd) {
        const auto at = static_cast<std::uint8_t>(b_[pos_++]);
        std::string name = at == kLiteral ? table_string(read_mb_u32())
                                          : attr_for(at);
        if (name.empty()) return std::nullopt;
        std::string value;
        if (pos_ < b_.size() &&
            static_cast<std::uint8_t>(b_[pos_]) == kStrI) {
          ++pos_;
          value = read_cstr();
        }
        node.attrs.emplace_back(std::move(name), std::move(value));
      }
      if (pos_ >= b_.size()) return std::nullopt;
      ++pos_;  // END of attribute list
    }
    if (has_content) {
      while (pos_ < b_.size() &&
             static_cast<std::uint8_t>(b_[pos_]) != kEnd) {
        auto child = decode_node();
        if (!child.has_value()) return std::nullopt;
        node.children.push_back(std::move(*child));
      }
      if (pos_ >= b_.size()) return std::nullopt;
      ++pos_;  // END of content
    }
    return node;
  }

  const std::string& b_;
  std::size_t pos_ = 0;
  std::string string_table_;
  bool failed_ = false;
};

}  // namespace

std::uint8_t wml_tag_token(std::string_view tag) {
  const auto& tags = tag_tokens();
  const auto it = tags.find(tag);
  return it == tags.end() ? 0 : it->second;
}

std::uint8_t wml_attr_token(std::string_view name) {
  const auto& attrs = attr_tokens();
  const auto it = attrs.find(name);
  return it == attrs.end() ? 0 : it->second;
}

std::string wbxml_encode(const MarkupDocument& wml) {
  return Encoder{}.encode(wml);
}

std::optional<MarkupDocument> wbxml_decode(const std::string& bytes) {
  return Decoder{bytes}.decode();
}

}  // namespace mcs::middleware
