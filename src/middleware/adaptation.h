#pragma once

#include <cstddef>

#include "middleware/markup.h"

namespace mcs::middleware {

// Content adaptation (§5: middleware "adapts content from the host to the
// mobile station"): shrink a translated document to what a small-screen,
// small-memory device can hold.
struct AdaptationConfig {
  bool keep_images = false;          // strip <img> unless the device can render
  std::size_t max_text_run = 512;    // truncate long text nodes (chars)
  // Hard cap on the serialized document; trailing content is dropped and an
  // ellipsis marker appended. WAP decks historically fit in ~1.4 KB.
  std::size_t max_serialized_bytes = 8 * 1024;
};

struct AdaptationResult {
  MarkupDocument document;
  std::size_t text_truncations = 0;
  std::size_t images_dropped = 0;
  std::size_t nodes_dropped = 0;  // due to the size cap
};

AdaptationResult adapt_document(const MarkupDocument& doc,
                                const AdaptationConfig& cfg);

}  // namespace mcs::middleware
