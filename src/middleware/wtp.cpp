#include "middleware/wtp.h"

#include <cstdlib>

#include "sim/contract.h"
#include "sim/logging.h"
#include "sim/util.h"

namespace mcs::middleware {

using sim::strf;

std::string WtpEndpoint::Reassembly::assemble() const {
  std::string out;
  for (const auto& [seg, data] : segments) out += data;
  return out;
}

WtpEndpoint::WtpEndpoint(transport::UdpStack& udp, std::uint16_t port,
                         WtpConfig cfg)
    : udp_{udp}, port_{port}, cfg_{cfg} {
  // Seed the tid space from the node address so tids are globally distinct
  // (useful in traces; correctness relies on the per-endpoint keying).
  next_tid_ = (static_cast<std::uint64_t>(udp_.node().addr().v) << 20) + 1;
  udp_.bind(port_, [this](const std::string& data, net::Endpoint from,
                          std::uint16_t) { on_datagram(data, from); });
}

void WtpEndpoint::send_segments(net::Endpoint to, const char* kind,
                                std::uint64_t tid, const std::string& payload) {
  const std::size_t nsegs =
      payload.empty() ? 1 : (payload.size() + cfg_.mtu - 1) / cfg_.mtu;
  for (std::size_t seg = 0; seg < nsegs; ++seg) {
    std::string frame =
        strf("%s %llu %zu %zu\n", kind, static_cast<unsigned long long>(tid),
             seg, nsegs);
    frame += payload.substr(seg * cfg_.mtu,
                            std::min(cfg_.mtu, payload.size() - seg * cfg_.mtu));
    stats_.counter("datagrams_sent").add();
    stats_.counter("bytes_sent").add(frame.size());
    udp_.send(to, port_, std::move(frame));
  }
}

void WtpEndpoint::invoke(net::Endpoint responder, std::string payload,
                         ResultCallback cb) {
  const std::uint64_t tid = next_tid_++;
  MCS_ASSERT(!outgoing_.contains(tid),
             "WTP transaction id reused while still outstanding");
  OutgoingTxn& txn = outgoing_[tid];
  txn.responder = responder;
  txn.payload = std::move(payload);
  txn.cb = std::move(cb);
  txn.ctx = obs::active_context();
  stats_.counter("invokes").add();
  send_segments(responder, "INV", tid, txn.payload);
  arm_retry(tid);
}

void WtpEndpoint::arm_retry(std::uint64_t tid) {
  auto it = outgoing_.find(tid);
  if (it == outgoing_.end()) return;
  it->second.timer = udp_.node().sim().after(cfg_.retry_interval, [this, tid] {
    auto tit = outgoing_.find(tid);
    if (tit == outgoing_.end() || tit->second.done) return;
    OutgoingTxn& txn = tit->second;
    txn.timer = sim::kInvalidEventId;
    if (++txn.retries > cfg_.max_retries) {
      stats_.counter("transactions_failed").add();
      finish(tid, std::nullopt);
      return;
    }
    MCS_INVARIANT(txn.retries <= cfg_.max_retries,
                  "WTP retry loop escaped its budget");
    stats_.counter("retransmissions").add();
    obs::ActiveScope scope{txn.ctx};
    obs::instant(txn.ctx, obs::Component::kMiddleware, "wtp.rtx",
                 udp_.node().sim().now());
    send_segments(txn.responder, "INV", tid, txn.payload);
    arm_retry(tid);
  });
}

void WtpEndpoint::finish(std::uint64_t tid, std::optional<std::string> result) {
  auto it = outgoing_.find(tid);
  if (it == outgoing_.end() || it->second.done) return;
  it->second.done = true;
  if (it->second.timer != sim::kInvalidEventId) {
    udp_.node().sim().cancel(it->second.timer);
  }
  ResultCallback cb = std::move(it->second.cb);
  outgoing_.erase(it);
  if (cb) cb(std::move(result));
}

void WtpEndpoint::on_datagram(const std::string& data, net::Endpoint from) {
  stats_.counter("datagrams_received").add();
  const std::size_t nl = data.find('\n');
  if (nl == std::string::npos) return;
  const auto head = sim::split(data.substr(0, nl), ' ');
  const std::string body = data.substr(nl + 1);

  if (head[0] == "INV" && head.size() == 4) {
    const std::uint64_t tid = std::strtoull(head[1].c_str(), nullptr, 10);
    const auto seg = static_cast<std::uint32_t>(std::atoi(head[2].c_str()));
    const auto total = static_cast<std::uint32_t>(std::atoi(head[3].c_str()));
    const RespKey key{from, tid};
    ResponderTxn& txn = responding_[key];
    if (txn.responded) {
      // Duplicate invoke after we answered: retransmit the cached result.
      stats_.counter("result_retransmissions").add();
      send_segments(from, "RES", tid, txn.cached_result);
      return;
    }
    txn.invoke.total = total;
    txn.invoke.segments.emplace(seg, body);
    if (!txn.invoke.complete() || txn.handled) return;
    txn.handled = true;
    if (!on_invoke) return;
    const std::string payload = txn.invoke.assemble();
    stats_.counter("invokes_handled").add();
    on_invoke(payload, from, [this, key, from](std::string result) {
      auto rit = responding_.find(key);
      if (rit == responding_.end() || rit->second.responded) return;
      rit->second.responded = true;
      MCS_INVARIANT(rit->second.handled,
                    "WTP responder answered an invoke it never handled");
      rit->second.cached_result = std::move(result);
      send_segments(from, "RES", key.tid, rit->second.cached_result);
      // Drop cached state after the TTL even if the ACK is lost.
      rit->second.expiry =
          udp_.node().sim().after(cfg_.responder_cache_ttl,
                                  [this, key] { responding_.erase(key); });
    });
    return;
  }
  if (head[0] == "RES" && head.size() == 4) {
    const std::uint64_t tid = std::strtoull(head[1].c_str(), nullptr, 10);
    auto it = outgoing_.find(tid);
    if (it == outgoing_.end()) {
      // Late duplicate: ack so the responder stops retransmitting.
      udp_.send(from, port_,
                strf("ACK %llu\n", static_cast<unsigned long long>(tid)));
      return;
    }
    OutgoingTxn& txn = it->second;
    const auto seg = static_cast<std::uint32_t>(std::atoi(head[2].c_str()));
    const auto total = static_cast<std::uint32_t>(std::atoi(head[3].c_str()));
    txn.result.total = total;
    txn.result.segments.emplace(seg, body);
    if (!txn.result.complete()) return;
    MCS_INVARIANT(txn.result.segments.size() == txn.result.total,
                  "WTP reassembly completed with a segment-count mismatch");
    udp_.send(from, port_,
              strf("ACK %llu\n", static_cast<unsigned long long>(tid)));
    stats_.counter("transactions_completed").add();
    finish(tid, txn.result.assemble());
    return;
  }
  if (head[0] == "ACK" && head.size() == 2) {
    const std::uint64_t tid = std::strtoull(head[1].c_str(), nullptr, 10);
    const RespKey key{from, tid};
    auto rit = responding_.find(key);
    if (rit != responding_.end()) {
      if (rit->second.expiry != sim::kInvalidEventId) {
        udp_.node().sim().cancel(rit->second.expiry);
      }
      responding_.erase(rit);
    }
    return;
  }
}

}  // namespace mcs::middleware
