#include "middleware/wtp.h"

#include "sim/contract.h"
#include "sim/logging.h"
#include "sim/util.h"

namespace mcs::middleware {

namespace {

// strtoull(.., 10) semantics over a non-NUL-terminated view: skip leading
// whitespace, then a decimal digit run. Header fields are produced by our
// own serializer, so signs/overflow never occur in practice.
std::uint64_t parse_u64(sim::Slice s) {
  std::size_t i = 0;
  while (i < s.size() && sim::is_ascii_space(s[i])) ++i;
  std::uint64_t v = 0;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
  }
  return v;
}

}  // namespace

void WtpEndpoint::Reassembly::add(std::uint32_t seg, sim::Slice body) {
  if (segments.empty() && total > 0) {
    segments.resize(total);
    seen.resize(total);
  }
  if (seg >= segments.size() || seen[seg]) return;  // malformed / duplicate
  seen[seg] = 1;
  ++received;
  segments[seg].assign(body.data(), body.size());
  MCS_INVARIANT(received <= total,
                "reassembly cannot hold more segments than were announced");
}

std::string WtpEndpoint::Reassembly::assemble() const {
  std::size_t n = 0;
  for (const auto& s : segments) n += s.size();
  return sim::build(n, [this](std::string& out) {
    for (const auto& s : segments) out += s;
  });
}

WtpEndpoint::WtpEndpoint(transport::UdpStack& udp, std::uint16_t port,
                         WtpConfig cfg)
    : udp_{udp}, port_{port}, cfg_{cfg} {
  // Seed the tid space from the node address so tids are globally distinct
  // (useful in traces; correctness relies on the per-endpoint keying).
  next_tid_ = (static_cast<std::uint64_t>(udp_.node().addr().v) << 20) + 1;
  udp_.bind(port_, [this](const std::string& data, net::Endpoint from,
                          std::uint16_t) { on_datagram(data, from); });
}

void WtpEndpoint::send_segments(net::Endpoint to, const char* kind,
                                std::uint64_t tid, const std::string& payload) {
  const std::size_t nsegs =
      payload.empty() ? 1 : (payload.size() + cfg_.mtu - 1) / cfg_.mtu;
  for (std::size_t seg = 0; seg < nsegs; ++seg) {
    const std::size_t off = seg * cfg_.mtu;
    const std::size_t len = std::min(cfg_.mtu, payload.size() - off);
    // One right-sized allocation per datagram; the UDP stack takes
    // ownership of the frame bytes (same bytes as
    // strf("%s %llu %zu %zu\n") + the payload window).
    auto frame = sim::build(0, [&](std::string& out) {
      sim::BufWriter w{out};
      w.need(48 + len);
      w.put(kind).ch(' ').u64(tid).ch(' ').u64(seg).ch(' ').u64(nsegs).ch(
          '\n');
      w.put(sim::Slice{payload.data() + off, len});
    });
    stats_.counter("datagrams_sent").add();
    stats_.counter("bytes_sent").add(frame.size());
    udp_.send(to, port_, frame);
  }
}

void WtpEndpoint::invoke(net::Endpoint responder, std::string&& payload,
                         ResultCallback cb) {
  const std::uint64_t tid = next_tid_++;
  MCS_ASSERT(!outgoing_.contains(tid),
             "WTP transaction id reused while still outstanding");
  OutgoingTxn& txn = outgoing_[tid];
  txn.responder = responder;
  txn.payload = std::move(payload);
  txn.cb = std::move(cb);
  txn.ctx = obs::active_context();
  stats_.counter("invokes").add();
  send_segments(responder, "INV", tid, txn.payload);
  arm_retry(tid);
}

void WtpEndpoint::arm_retry(std::uint64_t tid) {
  auto it = outgoing_.find(tid);
  if (it == outgoing_.end()) return;
  it->second.timer = udp_.node().sim().after(cfg_.retry_interval, [this, tid] {
    auto tit = outgoing_.find(tid);
    if (tit == outgoing_.end() || tit->second.done) return;
    OutgoingTxn& txn = tit->second;
    txn.timer = sim::kInvalidEventId;
    if (++txn.retries > cfg_.max_retries) {
      stats_.counter("transactions_failed").add();
      finish(tid, std::nullopt);
      return;
    }
    MCS_INVARIANT(txn.retries <= cfg_.max_retries,
                  "WTP retry loop escaped its budget");
    stats_.counter("retransmissions").add();
    obs::ActiveScope scope{txn.ctx};
    obs::instant(txn.ctx, obs::Component::kMiddleware, "wtp.rtx",
                 udp_.node().sim().now());
    send_segments(txn.responder, "INV", tid, txn.payload);
    arm_retry(tid);
  });
}

void WtpEndpoint::finish(std::uint64_t tid,
                         std::optional<std::string>&& result) {
  auto it = outgoing_.find(tid);
  if (it == outgoing_.end() || it->second.done) return;
  it->second.done = true;
  if (it->second.timer != sim::kInvalidEventId) {
    udp_.node().sim().cancel(it->second.timer);
  }
  ResultCallback cb = std::move(it->second.cb);
  outgoing_.erase(it);
  if (cb) cb(std::move(result));
}

void WtpEndpoint::on_datagram(const std::string& data, net::Endpoint from) {
  stats_.counter("datagrams_received").add();
  const std::size_t nl = data.find('\n');
  if (nl == std::string::npos) return;
  const sim::Slice head{data.data(), nl};
  const sim::Slice body{data.data() + nl + 1, data.size() - nl - 1};

  // Split the header on ' ' exactly as sim::split would (empty fields
  // count toward the field total) without materializing the field vector.
  sim::Slice f[4];
  std::size_t nf = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= head.size(); ++i) {
    if (i == head.size() || head[i] == ' ') {
      if (nf < 4) f[nf] = sim::Slice{head.data() + start, i - start};
      ++nf;
      start = i + 1;
    }
  }

  if (f[0] == "INV" && nf == 4) {
    const std::uint64_t tid = parse_u64(f[1]);
    const auto seg = static_cast<std::uint32_t>(parse_u64(f[2]));
    const auto total = static_cast<std::uint32_t>(parse_u64(f[3]));
    const RespKey key{from, tid};
    ResponderTxn& txn = responding_[key];
    if (txn.responded) {
      // Duplicate invoke after we answered: retransmit the cached result.
      stats_.counter("result_retransmissions").add();
      send_segments(from, "RES", tid, txn.cached_result);
      return;
    }
    txn.invoke.total = total;
    txn.invoke.add(seg, body);
    if (!txn.invoke.complete() || txn.handled) return;
    txn.handled = true;
    if (!on_invoke) return;
    const auto payload = txn.invoke.assemble();
    stats_.counter("invokes_handled").add();
    on_invoke(payload, from, [this, key, from](std::string&& result) {
      auto rit = responding_.find(key);
      if (rit == responding_.end() || rit->second.responded) return;
      rit->second.responded = true;
      MCS_INVARIANT(rit->second.handled,
                    "WTP responder answered an invoke it never handled");
      rit->second.cached_result = std::move(result);
      send_segments(from, "RES", key.tid, rit->second.cached_result);
      // Drop cached state after the TTL even if the ACK is lost.
      rit->second.expiry =
          udp_.node().sim().after(cfg_.responder_cache_ttl,
                                  [this, key] { responding_.erase(key); });
    });
    return;
  }
  if (f[0] == "RES" && nf == 4) {
    const std::uint64_t tid = parse_u64(f[1]);
    auto it = outgoing_.find(tid);
    if (it == outgoing_.end()) {
      // Late duplicate: ack so the responder stops retransmitting.
      udp_.send(from, port_, sim::cat("ACK ", sim::u64s(tid), "\n"));
      return;
    }
    OutgoingTxn& txn = it->second;
    const auto seg = static_cast<std::uint32_t>(parse_u64(f[2]));
    const auto total = static_cast<std::uint32_t>(parse_u64(f[3]));
    txn.result.total = total;
    txn.result.add(seg, body);
    if (!txn.result.complete()) return;
    MCS_INVARIANT(txn.result.received == txn.result.total,
                  "WTP reassembly completed with a segment-count mismatch");
    udp_.send(from, port_, sim::cat("ACK ", sim::u64s(tid), "\n"));
    stats_.counter("transactions_completed").add();
    finish(tid, txn.result.assemble());
    return;
  }
  if (f[0] == "ACK" && nf == 2) {
    const std::uint64_t tid = parse_u64(f[1]);
    const RespKey key{from, tid};
    auto rit = responding_.find(key);
    if (rit != responding_.end()) {
      if (rit->second.expiry != sim::kInvalidEventId) {
        udp_.node().sim().cancel(rit->second.expiry);
      }
      responding_.erase(rit);
    }
    return;
  }
}

}  // namespace mcs::middleware
