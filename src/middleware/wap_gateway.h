#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "host/http_server.h"
#include "obs/metrics.h"
#include "security/wtls.h"
#include "middleware/adaptation.h"
#include "middleware/wtp.h"

namespace mcs::middleware {

// Maps a symbolic or dotted host name (plus port) to a network endpoint;
// plays the role of DNS for gateways and browsers.
using HostResolver =
    std::function<std::optional<net::Endpoint>(const std::string& host,
                                               std::uint16_t port)>;
// Resolves dotted-quad hosts only ("10.0.0.5"); returns nullopt otherwise.
HostResolver dotted_quad_resolver();

inline constexpr std::uint16_t kWapGatewayPort = 9201;

// WSP-lite request/response carried inside WTP transactions:
//   request:  "GET <url>"
//   response: "<status> <content-type>\n" <body bytes>
struct WspResponse {
  int status = 0;
  std::string content_type;
  std::string body;
};
std::string wsp_encode_request(const std::string& url);
std::optional<std::string> wsp_decode_request(const std::string& payload);
std::string wsp_encode_response(int status, const std::string& content_type,
                                const std::string& body);
std::optional<WspResponse> wsp_decode_response(const std::string& payload);

// Pre-shared CA MAC key that phones ship with (models the root certificate
// burned into the handset firmware).
inline constexpr std::uint64_t kDefaultWtlsCaKey = 0xCA11AB1E5EC12E7ull;

struct WapGatewayConfig {
  std::uint16_t wtp_port = kWapGatewayPort;
  // Simulated CPU cost of HTML->WML translation + WBXML compilation.
  sim::Time translation_delay = sim::Time::millis(5);
  bool encode_wbxml = true;  // binary-encode decks for the air link
  AdaptationConfig adaptation;
  WtpConfig wtp;
  // WTLS: serve secure sessions to phones that request them. Note the
  // historical "WAP gap": the gateway terminates WTLS, so content transits
  // the gateway in plaintext between decryption and the wired TLS hop.
  bool enable_wtls = true;
  std::uint64_t wtls_ca_key = kDefaultWtlsCaKey;
};

// The WAP Gateway (§5.1): "requests from mobile stations are sent as a URL
// through the network to the WAP Gateway; responses are sent from the Web
// server to the WAP Gateway in HTML and are then translated in WML and sent
// to the mobile stations." Speaks WTP/WDP toward the phone and HTTP/TCP
// toward origin servers.
class WapGateway {
 public:
  WapGateway(net::Node& node, transport::UdpStack& udp,
             transport::TcpStack& tcp, HostResolver resolver,
             WapGatewayConfig cfg = {});
  WapGateway(const WapGateway&) = delete;
  WapGateway& operator=(const WapGateway&) = delete;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t upstream_failures = 0;
    std::uint64_t html_bytes_in = 0;    // from origin servers
    std::uint64_t wml_bytes_out = 0;    // textual WML after translation
    std::uint64_t air_bytes_out = 0;    // actually sent to the phone
    std::uint64_t translations = 0;
  };
  const Stats& stats() const { return stats_; }
  // Export the gateway counters into a system-wide snapshot under `prefix`
  // ("middleware.wap"), for the workload metrics layer.
  void export_stats(sim::StatsSnapshot& snap,
                    const std::string& prefix) const;
  WtpEndpoint& wtp() { return wtp_; }
  // WAP-era phones cannot store cookies; the gateway keeps one jar per
  // phone (keyed by its WDP endpoint) and plays the cookies toward origin
  // servers on the phone's behalf.
  const host::CookieJar* jar_for(net::Endpoint phone) const;
  std::uint64_t wtls_sessions() const { return wtls_sessions_; }

 private:
  void on_wtp_invoke(const std::string& payload, net::Endpoint from,
                     std::function<void(std::string)> respond);
  void handle_request(const std::string& payload, net::Endpoint from,
                      std::function<void(std::string)> respond);

  net::Node& node_;
  WapGatewayConfig cfg_;
  HostResolver resolver_;
  WtpEndpoint wtp_;
  host::HttpClient http_;
  std::unordered_map<net::Endpoint, host::CookieJar> phone_jars_;
  // WTLS identity + one record channel per secured phone.
  security::DhKeyPair wtls_key_;
  security::Certificate wtls_cert_;
  std::unordered_map<net::Endpoint, security::SecureChannel> wtls_channels_;
  std::uint64_t wtls_sessions_ = 0;
  Stats stats_;
  // Telemetry handles, cached at construction (obs/metrics.h).
  obs::TsCounter* m_requests_ = obs::metric_counter("middleware.requests");
  obs::TsCounter* m_translations_ =
      obs::metric_counter("middleware.translations");
  obs::TsCounter* m_air_bytes_ = obs::metric_counter("middleware.air_bytes");
  // Translation output buffers, reused across requests so steady-state
  // translation allocates nothing (DESIGN.md §12).
  std::string wml_buf_;
  std::string wbxml_buf_;
};

inline constexpr std::uint16_t kIModeGatewayPort = 8001;

struct IModeGatewayConfig {
  std::uint16_t port = kIModeGatewayPort;
  sim::Time translation_delay = sim::Time::millis(2);  // lighter than WAP
  AdaptationConfig adaptation;
};

// The i-mode service gateway (§5.1): phones keep an always-on HTTP
// connection to the gateway; content is Compact HTML, so translation is a
// simplification pass rather than a language change, and there is no
// binary recompilation step.
class IModeGateway {
 public:
  IModeGateway(transport::TcpStack& tcp, HostResolver resolver,
               IModeGatewayConfig cfg = {});
  IModeGateway(const IModeGateway&) = delete;
  IModeGateway& operator=(const IModeGateway&) = delete;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t upstream_failures = 0;
    std::uint64_t html_bytes_in = 0;
    std::uint64_t chtml_bytes_out = 0;
  };
  const Stats& stats() const { return stats_; }
  // As WapGateway::export_stats, under e.g. "middleware.imode".
  void export_stats(sim::StatsSnapshot& snap,
                    const std::string& prefix) const;

 private:
  void handle(const host::HttpRequest& req,
              std::function<void(host::HttpResponse)> respond);

  transport::TcpStack& tcp_;
  IModeGatewayConfig cfg_;
  HostResolver resolver_;
  host::HttpServer server_;
  host::HttpClient http_;
  // Per-phone cookie jar, keyed by the phone's TCP endpoint (X-Peer).
  std::unordered_map<std::string, host::CookieJar> phone_jars_;
  Stats stats_;
  // Telemetry handles, cached at construction (obs/metrics.h); shared names
  // with WapGateway so "middleware.*" totals cover either gateway flavour.
  obs::TsCounter* m_requests_ = obs::metric_counter("middleware.requests");
  obs::TsCounter* m_translations_ =
      obs::metric_counter("middleware.translations");
  // Reused translation output buffer (DESIGN.md §12).
  std::string chtml_buf_;
};

}  // namespace mcs::middleware
