#include "middleware/adaptation.h"

namespace mcs::middleware {

namespace {

void adapt_node(const MarkupNode& n, MarkupNode& out,
                const AdaptationConfig& cfg, AdaptationResult& result) {
  if (n.is_text()) {
    MarkupNode t = n;
    if (t.text.size() > cfg.max_text_run) {
      t.text.resize(cfg.max_text_run);
      t.text += "...";
      ++result.text_truncations;
    }
    out.children.push_back(std::move(t));
    return;
  }
  if (n.tag == "img" && !cfg.keep_images) {
    ++result.images_dropped;
    if (const std::string* alt = n.attr("alt");
        alt != nullptr && !alt->empty()) {
      out.children.push_back(MarkupNode::text_node("[" + *alt + "]"));
    }
    return;
  }
  MarkupNode copy;
  copy.tag = n.tag;
  copy.attrs = n.attrs;
  for (const auto& c : n.children) adapt_node(c, copy, cfg, result);
  out.children.push_back(std::move(copy));
}

// Remove the deepest trailing leaf; repeated calls trim the document from
// the end until it fits the size budget.
bool drop_last_leaf(MarkupNode& node) {
  if (node.children.empty()) return false;
  if (drop_last_leaf(node.children.back())) return true;
  node.children.pop_back();
  return true;
}

}  // namespace

AdaptationResult adapt_document(const MarkupDocument& doc,
                                const AdaptationConfig& cfg) {
  AdaptationResult result;
  result.document.kind = doc.kind;
  for (const auto& c : doc.root.children) {
    adapt_node(c, result.document.root, cfg, result);
  }
  // Enforce the serialized-size budget by trimming from the end.
  while (result.document.serialize().size() > cfg.max_serialized_bytes) {
    if (!drop_last_leaf(result.document.root)) break;
    ++result.nodes_dropped;
  }
  if (result.nodes_dropped > 0) {
    // Let the user see the page was cut.
    MarkupNode* target = &result.document.root;
    while (!target->children.empty() && !target->children.back().is_text() &&
           target->children.back().tag != "p") {
      target = &target->children.back();
    }
    MarkupNode p = MarkupNode::element("p");
    p.children.push_back(MarkupNode::text_node("[more...]"));
    target->children.push_back(std::move(p));
  }
  return result;
}

}  // namespace mcs::middleware
