#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mcs::middleware {

// The three markup languages of the paper's middleware layer (Table 3):
// HTML served by origin web servers, WML produced by the WAP gateway,
// cHTML (Compact HTML) served through i-mode.
enum class MarkupKind { kHtml, kWml, kChtml };

const char* markup_kind_name(MarkupKind k);

// One node of a parsed document: an element (tag + attrs + children) or a
// text node (tag empty, text set).
struct MarkupNode {
  std::string tag;   // lowercase; empty for text nodes
  std::string text;  // text nodes only
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<MarkupNode> children;

  bool is_text() const { return tag.empty(); }
  const std::string* attr(const std::string& name) const;
  void set_attr(const std::string& name, const std::string& value);

  // First element with this tag in document order (self included).
  const MarkupNode* find(const std::string& tag_name) const;
  // Concatenated text of all descendant text nodes. The _into form appends
  // to a caller-owned buffer so recursion over a subtree costs at most one
  // allocation for the whole result.
  std::string inner_text() const;
  void inner_text_into(std::string& out) const;
  // Total number of element nodes (self included if an element).
  std::size_t element_count() const;

  static MarkupNode element(std::string tag_name) {
    MarkupNode n;
    n.tag = std::move(tag_name);
    return n;
  }
  static MarkupNode text_node(std::string content) {
    MarkupNode n;
    n.text = std::move(content);
    return n;
  }
};

struct MarkupDocument {
  MarkupKind kind = MarkupKind::kHtml;
  MarkupNode root;  // synthetic container; children are top-level elements

  std::string serialize() const;
  const MarkupNode* find(const std::string& tag) const {
    return root.find(tag);
  }
  std::string title() const;
};

// Lenient tag-soup parser: handles attributes (quoted and bare), self-closing
// and void elements, comments, doctypes, and raw-text elements
// (script/style). Mismatched end tags close the nearest matching ancestor.
MarkupDocument parse_markup(const std::string& source, MarkupKind kind);

// --- Gateway translations (§5.1) -------------------------------------------
// WAP gateway: "responses are sent from the Web server ... in HTML and are
// then translated in WML and sent to the mobile stations."
MarkupDocument html_to_wml(const MarkupDocument& html);
// i-mode serves Compact HTML: HTML with scripts/styles/tables/frames
// removed and structure simplified.
MarkupDocument html_to_chtml(const MarkupDocument& html);

}  // namespace mcs::middleware
