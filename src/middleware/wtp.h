#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/arena.h"

#include "obs/trace.h"
#include "sim/stats.h"
#include "transport/udp.h"

namespace mcs::middleware {

// WAP Transaction Protocol (WTP class 2: reliable invoke/result) over WDP
// (== UDP here). One request/response exchange per transaction, with
// segmentation-and-reassembly, retransmission, and a result ack — the
// connectionless transaction style WAP uses instead of TCP.
//
// Frames are one datagram each: a text header line, then raw payload bytes:
//   "INV <tid> <seg> <nsegs>\n" <bytes>     initiator -> responder
//   "RES <tid> <seg> <nsegs>\n" <bytes>     responder -> initiator
//   "ACK <tid>\n"                           initiator -> responder
struct WtpConfig {
  sim::Time retry_interval = sim::Time::millis(800);
  int max_retries = 6;
  std::size_t mtu = 1200;  // payload bytes per datagram
  sim::Time responder_cache_ttl = sim::Time::seconds(10.0);
};

class WtpEndpoint {
 public:
  // Responder role: handle a complete invoke, answer via `respond` (once).
  using InvokeHandler = std::function<void(
      const std::string& payload, net::Endpoint from,
      std::function<void(std::string)> respond)>;
  // Initiator role: completion callback (nullopt = transaction failed).
  using ResultCallback = std::function<void(std::optional<std::string>)>;

  WtpEndpoint(transport::UdpStack& udp, std::uint16_t port,
              WtpConfig cfg = {});
  WtpEndpoint(const WtpEndpoint&) = delete;
  WtpEndpoint& operator=(const WtpEndpoint&) = delete;

  InvokeHandler on_invoke;

  // Run one transaction against a remote responder. Takes the payload by
  // rvalue so the per-transaction copy is explicit at call sites
  // (DESIGN.md §12).
  void invoke(net::Endpoint responder, std::string&& payload,
              ResultCallback cb);

  sim::StatsRegistry& stats() { return stats_; }
  const sim::StatsRegistry& stats() const { return stats_; }
  std::uint16_t port() const { return port_; }

 private:
  // Segment buffers are preallocated to the announced count on the first
  // frame, so out-of-order arrival is a slot assignment, not map growth.
  // Peers are other WtpEndpoints, so frames are well-formed by construction;
  // a segment index past the announced count is dropped.
  struct Reassembly {
    std::vector<std::string> segments;  // sized to `total` on first frame
    std::vector<std::uint8_t> seen;     // received flags (duplicates ignored)
    std::uint32_t total = 0;
    std::uint32_t received = 0;
    bool complete() const { return total > 0 && received == total; }
    void add(std::uint32_t seg, sim::Slice body);
    std::string assemble() const;
  };
  struct OutgoingTxn {  // initiator side
    net::Endpoint responder;
    std::string payload;
    ResultCallback cb;
    Reassembly result;
    int retries = 0;
    sim::EventId timer = sim::kInvalidEventId;
    bool done = false;
    // Span the invoke was issued under; retransmitted segments re-enter it
    // so their wire time attributes to the same trace.
    obs::TraceContext ctx;
  };
  struct ResponderTxn {  // responder side
    Reassembly invoke;
    std::string cached_result;  // retransmitted until ACK or TTL
    bool responded = false;
    bool handled = false;
    sim::EventId expiry = sim::kInvalidEventId;
  };

  void on_datagram(const std::string& data, net::Endpoint from);
  void send_segments(net::Endpoint to, const char* kind, std::uint64_t tid,
                     const std::string& payload);
  void arm_retry(std::uint64_t tid);
  void finish(std::uint64_t tid, std::optional<std::string>&& result);

  transport::UdpStack& udp_;
  std::uint16_t port_ = 0;
  WtpConfig cfg_;
  std::uint64_t next_tid_ = 0;
  std::unordered_map<std::uint64_t, OutgoingTxn> outgoing_;
  // Keyed by (initiator endpoint, tid) so tids from different phones never
  // collide at a shared gateway.
  struct RespKey {
    net::Endpoint from;
    std::uint64_t tid = 0;
    bool operator==(const RespKey&) const = default;
  };
  struct RespKeyHash {
    std::size_t operator()(const RespKey& k) const noexcept {
      return std::hash<net::Endpoint>{}(k.from) ^
             std::hash<std::uint64_t>{}(k.tid);
    }
  };
  std::unordered_map<RespKey, ResponderTxn, RespKeyHash> responding_;
  sim::StatsRegistry stats_;
};

}  // namespace mcs::middleware
