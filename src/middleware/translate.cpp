// Fused zero-copy translation pipeline (DESIGN.md §12). The legacy pipeline
// materializes four owned trees/strings per response: parse_markup copies
// every tag/attr/text into MarkupNode strings, html_to_wml copies the tree,
// adapt_document copies it again, serialize()/wbxml_encode build the output.
// This file does the same work in one pass over arena-backed nodes whose
// tags, attributes, and text are slices into the HTML source; the only heap
// traffic left is the caller's reused output buffer and the recycled arena
// chunks, both amortized to zero across requests.
//
// Byte-exactness is the contract: every rule below is a line-for-line port
// of the corresponding legacy rule (markup.cpp / adaptation.cpp), and the
// translate equivalence tests assert identical output bytes and counters
// over the corpus and randomized documents. When touching either side,
// change both.

#include "middleware/translate.h"

#include <cctype>
#include <cstring>
#include <type_traits>

#include "middleware/wbxml.h"
#include "sim/contract.h"

namespace mcs::middleware {
namespace {

using sim::Arena;
using sim::BufWriter;
using sim::Slice;

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

Slice trim_ws(Slice s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return Slice{s.data() + b, e - b};
}

// Lowercased view: zero-copy when already lowercase (the common case for
// machine-generated HTML), arena copy otherwise.
Slice lower_slice(Arena& arena, Slice s) {
  bool has_upper = false;
  for (const char c : s) {
    if (c >= 'A' && c <= 'Z') {
      has_upper = true;
      break;
    }
  }
  if (!has_upper) return s;
  char* dst = arena.alloc_chars(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    dst[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(s[i])));
  }
  return Slice{dst, s.size()};
}

// Arena-owned concatenation of up to three parts.
Slice arena_cat(Arena& arena, Slice a, Slice b, Slice c) {
  const std::size_t total = a.size() + b.size() + c.size();
  if (total == 0) return {};
  char* dst = arena.alloc_chars(total);
  char* p = dst;
  std::memcpy(p, a.data(), a.size());
  p += a.size();
  std::memcpy(p, b.data(), b.size());
  p += b.size();
  std::memcpy(p, c.data(), c.size());
  return Slice{dst, total};
}

bool is_void_tag(Slice tag) {
  return tag == "br" || tag == "img" || tag == "hr" || tag == "input" ||
         tag == "meta" || tag == "link" || tag == "base" || tag == "area" ||
         tag == "col";
}

bool is_raw_text_tag(Slice tag) { return tag == "script" || tag == "style"; }

// ---------------------------------------------------------------------------
// Arena view tree: nodes and attributes are bump-allocated, children and
// attributes are intrusive singly-linked lists, every string is a Slice.

struct VAttr {
  Slice name;
  Slice value;
  VAttr* next = nullptr;
};

struct VNode {
  Slice tag;   // empty for text nodes (and the synthetic root)
  Slice text;  // text nodes only
  VAttr* attrs = nullptr;
  VAttr* attrs_tail = nullptr;
  VNode* first = nullptr;  // children
  VNode* last = nullptr;
  VNode* next = nullptr;  // sibling
  bool synthetic = false;  // wrap_loose marker (never serialized)

  bool is_text() const { return tag.empty(); }
};

static_assert(std::is_trivially_copyable_v<VNode> &&
                  std::is_trivially_copyable_v<VAttr>,
              "view nodes are raw-arena allocated; they must not need a "
              "constructor or destructor");

VNode* new_node(Arena& arena) {
  auto* n = static_cast<VNode*>(arena.allocate(sizeof(VNode), alignof(VNode)));
  *n = VNode{};
  return n;
}

VNode* new_text(Arena& arena, Slice t) {
  VNode* n = new_node(arena);
  n->text = t;
  return n;
}

VNode* new_element(Arena& arena, Slice tag) {
  VNode* n = new_node(arena);
  n->tag = tag;
  return n;
}

void add_child(VNode* parent, VNode* child) {
  if (parent->last != nullptr) {
    parent->last->next = child;
  } else {
    parent->first = child;
  }
  parent->last = child;
}

void add_attr(Arena& arena, VNode* n, Slice name, Slice value) {
  auto* a = static_cast<VAttr*>(arena.allocate(sizeof(VAttr), alignof(VAttr)));
  *a = VAttr{name, value, nullptr};
  if (n->attrs_tail != nullptr) {
    n->attrs_tail->next = a;
  } else {
    n->attrs = a;
  }
  n->attrs_tail = a;
}

const VAttr* find_attr(const VNode* n, Slice name) {
  for (const VAttr* a = n->attrs; a != nullptr; a = a->next) {
    if (a->name == name) return a;
  }
  return nullptr;
}

// First element with this tag in document order (self included), mirroring
// MarkupNode::find.
const VNode* find_first(const VNode* n, Slice tag) {
  if (n->tag == tag) return n;
  for (const VNode* c = n->first; c != nullptr; c = c->next) {
    if (const VNode* hit = find_first(c, tag); hit != nullptr) return hit;
  }
  return nullptr;
}

// Arena-backed growable pointer stack for the parser's open-element chain.
class NodeStack {
 public:
  explicit NodeStack(Arena& arena) : arena_{arena} {}

  void push(VNode* n) {
    if (size_ == cap_) grow();
    data_[size_++] = n;
  }
  void resize(std::size_t n) {
    MCS_ASSERT(n <= size_, "NodeStack::resize only shrinks");
    size_ = n;
  }
  VNode* back() const { return data_[size_ - 1]; }
  VNode* at(std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }

 private:
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 16 : cap_ * 2;
    auto** fresh = static_cast<VNode**>(
        arena_.allocate(new_cap * sizeof(VNode*), alignof(VNode*)));
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(VNode*));
    data_ = fresh;
    cap_ = new_cap;
  }

  Arena& arena_;
  VNode** data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

// ---------------------------------------------------------------------------
// Parser: a slice-for-slice port of markup.cpp's Parser. Every branch and
// edge case (quote-aware tag ends, raw-text swallowing, stray end tags)
// matches the legacy behavior; only the storage differs.

class ViewParser {
 public:
  ViewParser(Slice src, Arena& arena)
      : src_{src}, arena_{arena}, stack_{arena} {}

  VNode* parse() {
    VNode* root = new_node(arena_);
    stack_.push(root);
    while (pos_ < src_.size()) {
      if (src_[pos_] == '<') {
        parse_tag();
      } else {
        parse_text();
      }
    }
    return root;
  }

 private:
  VNode* top() { return stack_.back(); }

  // src_[from, from+len) clamped to the source, like std::string::substr.
  Slice sub(std::size_t from, std::size_t len) const {
    if (from >= src_.size()) return {};
    const std::size_t n = std::min(len, src_.size() - from);
    return Slice{src_.data() + from, n};
  }

  void parse_text() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '<') ++pos_;
    const Slice t = sub(start, pos_ - start);
    // Collapse pure-whitespace runs between tags; keep meaningful text.
    if (trim_ws(t).empty()) return;
    add_child(top(), new_text(arena_, t));
  }

  void parse_tag() {
    // pos_ at '<'
    if (src_.compare(pos_, 4, "<!--") == 0) {
      const std::size_t end = src_.find("-->", pos_);
      pos_ = end == Slice::npos ? src_.size() : end + 3;
      return;
    }
    if (pos_ + 1 < src_.size() &&
        (src_[pos_ + 1] == '!' || src_[pos_ + 1] == '?')) {
      const std::size_t end = src_.find('>', pos_);
      pos_ = end == Slice::npos ? src_.size() : end + 1;
      return;
    }
    if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
      // End tag.
      const std::size_t end = src_.find('>', pos_);
      const Slice name =
          lower_slice(arena_, trim_ws(sub(pos_ + 2, end - pos_ - 2)));
      pos_ = end == Slice::npos ? src_.size() : end + 1;
      close_tag(name);
      return;
    }
    // Start tag.
    const std::size_t end = find_tag_end(pos_);
    if (end == Slice::npos) {
      pos_ = src_.size();
      return;
    }
    Slice inside = sub(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    bool self_closing = false;
    if (!inside.empty() && inside.back() == '/') {
      self_closing = true;
      inside.remove_suffix(1);
    }
    std::size_t i = 0;
    while (i < inside.size() &&
           !std::isspace(static_cast<unsigned char>(inside[i]))) {
      ++i;
    }
    VNode* node = new_element(
        arena_, lower_slice(arena_, Slice{inside.data(), i}));
    if (node->tag.empty()) return;
    parse_attrs(Slice{inside.data() + i, inside.size() - i}, node);

    if (is_raw_text_tag(node->tag) && !self_closing) {
      // Swallow raw content up to the matching close tag. The legacy parser
      // searches for "</" + the lowercased tag, so only these two literals
      // can occur.
      const char* close = node->tag == "script" ? "</script" : "</style";
      std::size_t raw_end = src_.find(close, pos_);
      if (raw_end == Slice::npos) raw_end = src_.size();
      const Slice raw = sub(pos_, raw_end - pos_);
      if (!raw.empty()) add_child(node, new_text(arena_, raw));
      const std::size_t gt = src_.find('>', raw_end);
      pos_ = gt == Slice::npos ? src_.size() : gt + 1;
      add_child(top(), node);
      return;
    }

    add_child(top(), node);
    if (!self_closing && !is_void_tag(node->tag)) stack_.push(node);
  }

  // '>' that terminates the tag, respecting quoted attribute values.
  std::size_t find_tag_end(std::size_t start) const {
    char quote = 0;
    for (std::size_t i = start + 1; i < src_.size(); ++i) {
      const char c = src_[i];
      if (quote != 0) {
        if (c == quote) quote = 0;
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        return i;
      }
    }
    return Slice::npos;
  }

  void parse_attrs(Slice s, VNode* node) {
    std::size_t i = 0;
    while (i < s.size()) {
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      if (i >= s.size()) break;
      const std::size_t name_start = i;
      while (i < s.size() && s[i] != '=' && s[i] != ' ' && s[i] != '\t' &&
             s[i] != '\n') {
        ++i;
      }
      const Slice name = lower_slice(
          arena_, Slice{s.data() + name_start, i - name_start});
      Slice value;
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      if (i < s.size() && s[i] == '=') {
        ++i;
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
          ++i;
        }
        if (i < s.size() && (s[i] == '"' || s[i] == '\'')) {
          const char q = s[i++];
          const std::size_t vstart = i;
          while (i < s.size() && s[i] != q) ++i;
          value = Slice{s.data() + vstart, i - vstart};
          if (i < s.size()) ++i;
        } else {
          const std::size_t vstart = i;
          while (i < s.size() &&
                 !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
          }
          value = Slice{s.data() + vstart, i - vstart};
        }
      }
      if (!name.empty()) add_attr(arena_, node, name, value);
    }
  }

  void close_tag(Slice name) {
    // Find the nearest open ancestor with this tag; unwind to it. If none,
    // ignore the stray end tag (tag-soup tolerance).
    for (std::size_t i = stack_.size(); i-- > 1;) {
      if (stack_.at(i)->tag == name) {
        stack_.resize(i);
        return;
      }
    }
  }

  Slice src_;
  Arena& arena_;
  std::size_t pos_ = 0;
  NodeStack stack_;
};

// ---------------------------------------------------------------------------
// Fused translation + adaptation. A port of markup.cpp's translate_node and
// adaptation.cpp's adapt_node collapsed into one walk: every text node the
// translation emits passes through the truncation rule (matching adapt's
// pass over the translated tree), while text adapt itself synthesizes (the
// cHTML "[alt]" replacement, the "[more...]" marker) bypasses it, exactly
// as in the legacy ordering.

class Xlate {
 public:
  Xlate(Arena& arena, const AdaptationConfig& cfg, bool wml)
      : arena_{arena}, cfg_{cfg}, wml_{wml} {}

  TranslateCounters counters;

  // Slice holding the concatenated text of all descendant text nodes.
  Slice inner_text(const VNode& n) {
    const std::size_t total = text_size(n);
    if (total == 0) return {};
    char* buf = arena_.alloc_chars(total);
    char* p = buf;
    text_fill(n, p);
    MCS_INVARIANT(p == buf + total,
                  "inner_text fill diverged from its size pass");
    return Slice{buf, total};
  }

  void children(const VNode& from, VNode* to) {
    MCS_ASSERT(to != nullptr, "adapted children need a parent to land in");
    for (const VNode* c = from.first; c != nullptr; c = c->next) {
      node(*c, to);
    }
  }

  // Adapted text node: the truncation rule from adapt_node.
  void adapted_text(VNode* out, Slice t) {
    if (t.size() > cfg_.max_text_run) {
      t = arena_cat(arena_, Slice{t.data(), cfg_.max_text_run}, "...", {});
      ++counters.text_truncations;
    }
    MCS_INVARIANT(t.size() <= cfg_.max_text_run + 3,
                  "truncation must bound every emitted text run");
    add_child(out, new_text(arena_, t));
  }

  void node(const VNode& n, VNode* out) {
    MCS_ASSERT(out != nullptr, "an adapted node needs a parent to land in");
    if (n.is_text()) {
      adapted_text(out, n.text);
      return;
    }
    const Slice t = n.tag;
    if (t == "script" || t == "style" || t == "head" || t == "title" ||
        t == "meta" || t == "link" || t == "iframe" || t == "frameset" ||
        t == "object" || t == "applet") {
      return;  // not representable on the handset
    }
    if (t == "p" || t == "div" || t == "section" || t == "article" ||
        t == "blockquote" || t == "center") {
      VNode* p = new_element(arena_, "p");
      children(n, p);
      if (p->first != nullptr) add_child(out, p);
      return;
    }
    if (t.size() == 2 && t[0] == 'h' && t[1] >= '1' && t[1] <= '6') {
      // Headings become emphasized paragraphs.
      VNode* p = new_element(arena_, "p");
      VNode* b = new_element(arena_, "b");
      children(n, b);
      add_child(p, b);
      add_child(out, p);
      return;
    }
    if (t == "a") {
      VNode* a = new_element(arena_, "a");
      copy_attr(n, a, "href");
      children(n, a);
      add_child(out, a);
      return;
    }
    if (t == "b" || t == "strong") {
      emit_wrapped(n, out, "b");
      return;
    }
    if (t == "i" || t == "em") {
      emit_wrapped(n, out, "i");
      return;
    }
    if (t == "u") {
      emit_wrapped(n, out, "u");
      return;
    }
    if (t == "br") {
      add_child(out, new_element(arena_, "br"));
      return;
    }
    if (t == "img") {
      const VAttr* alt = find_attr(&n, "alt");
      if (wml_) {
        // WML decks drop images in translation; the alt text node then goes
        // through adapt's truncation like any other text.
        if (alt != nullptr && !alt->value.empty()) {
          adapted_text(out, arena_cat(arena_, "[", alt->value, "]"));
        }
      } else if (!cfg_.keep_images) {
        // cHTML keeps the <img> through translation; adapt drops it and
        // emits the alt marker after the truncation pass (never truncated).
        ++counters.images_dropped;
        if (alt != nullptr && !alt->value.empty()) {
          add_child(out,
                    new_text(arena_, arena_cat(arena_, "[", alt->value, "]")));
        }
      } else {
        VNode* img = new_element(arena_, "img");
        copy_attr(n, img, "src");
        copy_attr(n, img, "alt");
        add_child(out, img);
      }
      return;
    }
    if (t == "table") {
      // Linearize: one paragraph per row, cells joined with separators.
      for (const VNode* section = n.first; section != nullptr;
           section = section->next) {
        if (section->tag == "tr") {
          table_row(*section, out);
        } else {  // thead/tbody/tfoot
          for (const VNode* row = section->first; row != nullptr;
               row = row->next) {
            table_row(*row, out);
          }
        }
      }
      return;
    }
    if (t == "ul" || t == "ol") {
      std::uint64_t index = 1;
      for (const VNode* li = n.first; li != nullptr; li = li->next) {
        if (li->tag != "li") continue;
        VNode* p = new_element(arena_, "p");
        if (t == "ol") {
          const sim::NumStr num = sim::u64s(index++);
          adapted_text(p, arena_cat(arena_, num, ". ", {}));
        } else {
          adapted_text(p, "- ");
        }
        children(*li, p);
        add_child(out, p);
      }
      return;
    }
    if (t == "input") {
      VNode* input = new_element(arena_, "input");
      copy_attr(n, input, "name");
      copy_attr(n, input, "type");
      copy_attr(n, input, "value");
      add_child(out, input);
      return;
    }
    if (t == "select" || t == "option") {
      VNode* copy = new_element(arena_, t);
      copy_attr(n, copy, "name");
      copy_attr(n, copy, "value");
      children(n, copy);
      add_child(out, copy);
      return;
    }
    if (t == "form") {
      // Forms flatten into their controls; submission becomes an anchor.
      VNode* p = new_element(arena_, "p");
      children(n, p);
      if (const VAttr* action = find_attr(&n, "action"); action != nullptr) {
        VNode* a = new_element(arena_, "a");
        add_attr(arena_, a, "href", action->value);
        adapted_text(a, "[submit]");
        add_child(p, a);
      }
      add_child(out, p);
      return;
    }
    // Unknown/structural tag (html, body, span, ...): unwrap.
    children(n, out);
  }

 private:
  static std::size_t text_size(const VNode& n) {
    std::size_t total = n.text.size();
    for (const VNode* c = n.first; c != nullptr; c = c->next) {
      total += text_size(*c);
    }
    return total;
  }

  static void text_fill(const VNode& n, char*& dst) {
    if (!n.text.empty()) {
      std::memcpy(dst, n.text.data(), n.text.size());
      dst += n.text.size();
    }
    for (const VNode* c = n.first; c != nullptr; c = c->next) {
      text_fill(*c, dst);
    }
  }

  void emit_wrapped(const VNode& n, VNode* out, Slice tag) {
    VNode* el = new_element(arena_, tag);
    children(n, el);
    add_child(out, el);
  }

  void copy_attr(const VNode& from, VNode* to, Slice name) {
    if (const VAttr* a = find_attr(&from, name); a != nullptr) {
      add_attr(arena_, to, name, a->value);
    }
  }

  void table_row(const VNode& row, VNode* out) {
    if (row.tag != "tr") return;
    // Two passes over the cells: measure the joined line, then fill it.
    std::size_t line_len = 0;
    for (const VNode* cell = row.first; cell != nullptr; cell = cell->next) {
      if (cell->tag != "td" && cell->tag != "th") continue;
      const Slice text = trim_ws(inner_text(*cell));
      if (text.empty()) continue;
      line_len += (line_len != 0 ? 3 : 0) + text.size();  // " | " separators
    }
    if (line_len == 0) return;
    char* buf = arena_.alloc_chars(line_len);
    char* p = buf;
    for (const VNode* cell = row.first; cell != nullptr; cell = cell->next) {
      if (cell->tag != "td" && cell->tag != "th") continue;
      const Slice text = trim_ws(inner_text(*cell));
      if (text.empty()) continue;
      if (p != buf) {
        std::memcpy(p, " | ", 3);
        p += 3;
      }
      std::memcpy(p, text.data(), text.size());
      p += text.size();
    }
    MCS_INVARIANT(p == buf + line_len,
                  "table row fill diverged from its size pass");
    VNode* para = new_element(arena_, "p");
    adapted_text(para, Slice{buf, line_len});
    add_child(out, para);
  }

  Arena& arena_;
  const AdaptationConfig& cfg_;
  bool wml_ = false;
};

// WML cards may only contain certain top-level elements; wrap loose inline
// content in synthetic paragraphs (port of markup.cpp wrap_loose_inline —
// the marker is a node flag here instead of a stripped attribute).
void wrap_loose_runs(Arena& arena, VNode* card) {
  VNode* c = card->first;
  card->first = nullptr;
  card->last = nullptr;
  while (c != nullptr) {
    VNode* next = c->next;
    c->next = nullptr;
    const bool block = c->tag == "p" || c->tag == "do" || c->tag == "template";
    if (block) {
      add_child(card, c);
    } else {
      VNode* tail = card->last;
      if (tail == nullptr || !(tail->tag == "p" && tail->synthetic)) {
        VNode* p = new_element(arena, "p");
        p->synthetic = true;
        add_child(card, p);
        tail = p;
      }
      add_child(tail, c);
    }
    c = next;
  }
}

// ---------------------------------------------------------------------------
// Serialized-size accounting and the size-cap trim, ported from
// adaptation.cpp. Sizes mirror serialize_node exactly: ' k="v"' per
// attribute, "/>" for childless void elements, "<tag>...</tag>" otherwise.

std::size_t attrs_bytes(const VNode& n) {
  std::size_t total = 0;
  for (const VAttr* a = n.attrs; a != nullptr; a = a->next) {
    total += 4 + a->name.size() + a->value.size();
  }
  return total;
}

std::size_t ser_size(const VNode& n) {
  if (n.is_text()) return n.text.size();
  const std::size_t open = 1 + n.tag.size() + attrs_bytes(n);
  if (n.first == nullptr && is_void_tag(n.tag)) return open + 2;
  std::size_t total = open + 1;
  for (const VNode* c = n.first; c != nullptr; c = c->next) {
    total += ser_size(*c);
  }
  return total + 3 + n.tag.size();
}

// Remove the deepest trailing leaf, returning it (nullptr when the tree is
// already bare) — the counterpart of adaptation.cpp's drop_last_leaf.
VNode* drop_last_leaf(VNode* n) {
  if (n->first == nullptr) return nullptr;
  if (VNode* sub = drop_last_leaf(n->last); sub != nullptr) return sub;
  VNode* popped = n->last;
  if (n->first == popped) {
    n->first = nullptr;
    n->last = nullptr;
  } else {
    VNode* prev = n->first;
    while (prev->next != popped) prev = prev->next;
    prev->next = nullptr;
    n->last = prev;
  }
  return popped;
}

void cap_trim(Arena& arena, VNode* root, const AdaptationConfig& cfg,
              TranslateCounters& counters) {
  std::size_t total = 0;
  for (const VNode* c = root->first; c != nullptr; c = c->next) {
    total += ser_size(*c);
  }
  while (total > cfg.max_serialized_bytes) {
    VNode* popped = drop_last_leaf(root);
    if (popped == nullptr) break;
    // The popped node is childless by construction, so its removal shrinks
    // the document by exactly its own serialization. (No generated void
    // element ever has children, so no parent flips to the "/>" form.)
    MCS_INVARIANT(popped->first == nullptr,
                  "drop_last_leaf popped a node with children");
    total -= ser_size(*popped);
    ++counters.nodes_dropped;
  }
  if (counters.nodes_dropped > 0) {
    // Let the user see the page was cut.
    VNode* target = root;
    while (target->last != nullptr && !target->last->is_text() &&
           target->last->tag != "p") {
      target = target->last;
    }
    VNode* p = new_element(arena, "p");
    add_child(p, new_text(arena, "[more...]"));
    add_child(target, p);
  }
}

// ---------------------------------------------------------------------------
// Emitters: text serialization (serialize_node port) and WBXML compilation
// (wbxml.cpp Encoder port). The translation emits only WML 1.1 code-page
// tags and attributes, so the WBXML string table stays empty and the binary
// streams straight into the caller's buffer.

void serialize_view(const VNode& n, BufWriter& w) {
  if (n.is_text()) {
    w.put(n.text);
    return;
  }
  w.ch('<').put(n.tag);
  for (const VAttr* a = n.attrs; a != nullptr; a = a->next) {
    w.ch(' ').put(a->name).put("=\"").put(a->value).ch('"');
  }
  if (n.first == nullptr && is_void_tag(n.tag)) {
    w.put("/>");
    return;
  }
  w.ch('>');
  for (const VNode* c = n.first; c != nullptr; c = c->next) {
    serialize_view(*c, w);
  }
  w.put("</").put(n.tag).ch('>');
}

constexpr char kWbxmlStrI = 0x03;
constexpr char kWbxmlEnd = 0x01;

void wbxml_view(const VNode& n, BufWriter& w) {
  if (n.is_text()) {
    w.ch(kWbxmlStrI).put(n.text).ch('\0');
    return;
  }
  std::uint8_t token = wml_tag_token(n.tag);
  MCS_ASSERT(token != 0,
             "translated decks use only WML 1.1 code-page tags; a literal "
             "tag here means the translation emitted something new without "
             "updating the fused encoder");
  const bool has_content = n.first != nullptr;
  const bool has_attrs = n.attrs != nullptr;
  if (has_content) token |= 0x40;
  if (has_attrs) token |= 0x80;
  w.ch(static_cast<char>(token));
  if (has_attrs) {
    for (const VAttr* a = n.attrs; a != nullptr; a = a->next) {
      const std::uint8_t at = wml_attr_token(a->name);
      MCS_ASSERT(at != 0, "translated decks use only WML 1.1 code-page "
                          "attributes");
      w.ch(static_cast<char>(at));
      if (!a->value.empty()) w.ch(kWbxmlStrI).put(a->value).ch('\0');
    }
    w.ch(kWbxmlEnd);
  }
  if (has_content) {
    for (const VNode* c = n.first; c != nullptr; c = c->next) {
      wbxml_view(*c, w);
    }
    w.ch(kWbxmlEnd);
  }
}

// Document title, mirroring MarkupDocument::title(): the first <title>'s
// trimmed inner text, else a <card>'s title attribute, else empty.
Slice doc_title(Xlate& x, const VNode* parsed) {
  if (const VNode* t = find_first(parsed, "title"); t != nullptr) {
    return trim_ws(x.inner_text(*t));
  }
  if (const VNode* card = find_first(parsed, "card"); card != nullptr) {
    if (const VAttr* v = find_attr(card, "title"); v != nullptr) {
      return v->value;
    }
  }
  return {};
}

}  // namespace

TranslateCounters translate_html(sim::Slice html, MarkupKind target,
                                 const AdaptationConfig& cfg,
                                 std::string& text_out,
                                 std::string* wbxml_out) {
  MCS_ASSERT(target == MarkupKind::kWml || target == MarkupKind::kChtml,
             "translate_html targets a handset language, not HTML");
  MCS_ASSERT(wbxml_out == nullptr || target == MarkupKind::kWml,
             "WBXML compilation is defined for WML decks only");
  // Per-thread recycled arenas: a request's nodes and slices cost pointer
  // bumps into warmed chunks, released wholesale when the lease ends.
  static thread_local sim::ArenaPool t_pool;
  const auto lease = t_pool.acquire();
  Arena& arena = *lease;

  ViewParser parser{html, arena};
  VNode* parsed = parser.parse();

  const bool wml = target == MarkupKind::kWml;
  Xlate x{arena, cfg, wml};
  VNode* root = new_node(arena);
  if (wml) {
    VNode* deck = new_element(arena, "wml");
    VNode* card = new_element(arena, "card");
    add_attr(arena, card, "id", "main");
    if (const Slice title = doc_title(x, parsed); !title.empty()) {
      add_attr(arena, card, "title", title);
    }
    x.children(*parsed, card);
    wrap_loose_runs(arena, card);
    add_child(deck, card);
    add_child(root, deck);
  } else {
    VNode* doc = new_element(arena, "html");
    VNode* body = new_element(arena, "body");
    x.children(*parsed, body);
    add_child(doc, body);
    add_child(root, doc);
  }
  cap_trim(arena, root, cfg, x.counters);

  text_out.clear();
  BufWriter tw{text_out};
  tw.need(256);
  for (const VNode* c = root->first; c != nullptr; c = c->next) {
    serialize_view(*c, tw);
  }
  if (wbxml_out != nullptr) {
    wbxml_out->clear();
    BufWriter bw{*wbxml_out};
    bw.need(text_out.size() / 2 + 16);
    // WBXML 1.3 header: version, WML 1.1 public id, UTF-8, empty string
    // table (the translation never needs the LITERAL mechanism).
    bw.ch(0x03).ch(0x04).ch(0x6A).ch(0x00);
    for (const VNode* c = root->first; c != nullptr; c = c->next) {
      wbxml_view(*c, bw);
    }
  }
  return x.counters;
}

}  // namespace mcs::middleware
