#include "station/device.h"

#include <stdexcept>

namespace mcs::station {

const char* mobile_os_name(MobileOs os) {
  switch (os) {
    case MobileOs::kPalmOs: return "Palm OS";
    case MobileOs::kPocketPc: return "Pocket PC";
    case MobileOs::kSymbian: return "Symbian OS";
  }
  return "?";
}

namespace {

BatteryConfig battery_for(MobileOs os, double cpu_mhz) {
  BatteryConfig b;
  // CPU power scales with clock rate: a 400 MHz PXA250 burns far more per
  // busy millisecond than a 33 MHz Dragonball (which is why slow Palm
  // devices lasted so long despite doing more milliseconds of work).
  b.cpu_joule_per_ms = 1.5e-3 * (cpu_mhz / 100.0);
  // "The plain vanilla design of the Palm OS has resulted in a long battery
  // life, approximately twice that of its rivals" (§4.1).
  if (os == MobileOs::kPalmOs) {
    b.capacity_joules = 20'000.0;
    b.idle_watts = 0.005;
  }
  return b;
}

}  // namespace

DeviceProfile ipaq_h3870() {
  DeviceProfile d;
  d.name = "Compaq iPAQ H3870";
  d.os_name = "MS Pocket PC 2002";
  d.os = MobileOs::kPocketPc;
  d.processor = "206 MHz Intel StrongARM 32-bit RISC";
  d.cpu_mhz = 206.0;
  d.ram_bytes = 64ull << 20;
  d.rom_bytes = 32ull << 20;
  d.battery = battery_for(d.os, d.cpu_mhz);
  return d;
}

DeviceProfile nokia_9290() {
  DeviceProfile d;
  d.name = "Nokia 9290 Communicator";
  d.os_name = "Symbian OS";
  d.os = MobileOs::kSymbian;
  d.processor = "32-bit ARM9 RISC";
  d.cpu_mhz = 52.0;  // ARM9 of the era
  d.ram_bytes = 16ull << 20;
  d.rom_bytes = 8ull << 20;
  d.battery = battery_for(d.os, d.cpu_mhz);
  return d;
}

DeviceProfile palm_i705() {
  DeviceProfile d;
  d.name = "Palm i705";
  d.os_name = "Palm OS 4.1";
  d.os = MobileOs::kPalmOs;
  d.processor = "33 MHz Motorola Dragonball VZ";
  d.cpu_mhz = 33.0;
  d.ram_bytes = 8ull << 20;
  d.rom_bytes = 4ull << 20;
  d.battery = battery_for(d.os, d.cpu_mhz);
  return d;
}

DeviceProfile sony_clie_nr70v() {
  DeviceProfile d;
  d.name = "SONY Clie PEG-NR70V";
  d.os_name = "Palm OS 4.1";
  d.os = MobileOs::kPalmOs;
  d.processor = "66 MHz Motorola Dragonball Super VZ";
  d.cpu_mhz = 66.0;
  d.ram_bytes = 16ull << 20;
  d.rom_bytes = 8ull << 20;
  d.battery = battery_for(d.os, d.cpu_mhz);
  return d;
}

DeviceProfile toshiba_e740() {
  DeviceProfile d;
  d.name = "Toshiba E740";
  d.os_name = "MS Pocket PC 2002";
  d.os = MobileOs::kPocketPc;
  d.processor = "400 MHz Intel PXA250";
  d.cpu_mhz = 400.0;
  d.ram_bytes = 64ull << 20;
  d.rom_bytes = 32ull << 20;
  d.battery = battery_for(d.os, d.cpu_mhz);
  return d;
}

std::vector<DeviceProfile> all_devices() {
  return {ipaq_h3870(), nokia_9290(), palm_i705(), sony_clie_nr70v(),
          toshiba_e740()};
}

DeviceProfile device_by_name(const std::string& name) {
  for (auto& d : all_devices()) {
    if (d.name == name) return d;
  }
  throw std::out_of_range("unknown device: " + name);
}

}  // namespace mcs::station
