#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcs::station {

// The three dominant mobile operating systems of §4.1.
enum class MobileOs { kPalmOs, kPocketPc, kSymbian };

const char* mobile_os_name(MobileOs os);

// Battery model parameters; Palm OS devices get roughly double the battery
// life of rivals, per the paper ("approximately twice that of its rivals").
struct BatteryConfig {
  double capacity_joules = 10'000.0;
  double tx_joule_per_byte = 2.0e-6;
  double rx_joule_per_byte = 1.0e-6;
  double cpu_joule_per_ms = 1.5e-3;
  double idle_watts = 0.01;
};

// One row of the paper's Table 2 plus derived simulation parameters.
struct DeviceProfile {
  std::string name;        // "Compaq iPAQ H3870"
  std::string os_name;     // "MS Pocket PC 2002"
  MobileOs os = MobileOs::kPocketPc;
  std::string processor;   // "206 MHz Intel StrongARM 32-bit RISC"
  double cpu_mhz = 100.0;
  std::uint64_t ram_bytes = 16ull << 20;
  std::uint64_t rom_bytes = 8ull << 20;
  BatteryConfig battery;

  // --- Derived cost model ----------------------------------------------------
  // Markup parse cost scales inversely with clock rate; the constant is
  // calibrated so a 200 MHz device parses ~1 KB/ms.
  double parse_ms_per_kb() const { return 200.0 / cpu_mhz; }
  // Layout/paint per element.
  double render_ms_per_element() const { return 40.0 / cpu_mhz; }
  // Browser cache gets a fixed slice of RAM.
  std::uint64_t cache_budget_bytes() const { return ram_bytes / 16; }
};

// The five devices of Table 2, exactly as tabulated.
DeviceProfile ipaq_h3870();
DeviceProfile nokia_9290();
DeviceProfile palm_i705();
DeviceProfile sony_clie_nr70v();
DeviceProfile toshiba_e740();
std::vector<DeviceProfile> all_devices();
DeviceProfile device_by_name(const std::string& name);

}  // namespace mcs::station
