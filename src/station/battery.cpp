#include "station/battery.h"

#include <algorithm>

#include "sim/contract.h"

namespace mcs::station {

void Battery::integrate_idle() const {
  const sim::Time now = sim_.now();
  MCS_INVARIANT(now >= last_update_,
                "battery idle integration observed time running backwards");
  if (now > last_update_) {
    const double j = (now - last_update_).to_seconds() * cfg_.idle_watts;
    spent_idle_ += j;
    remaining_ -= j;
    last_update_ = now;
  }
}

void Battery::drain(double joules) const {
  MCS_ASSERT(joules >= 0.0, "battery drain must not add charge");
  remaining_ -= joules;
}

void Battery::drain_tx_bytes(std::uint64_t bytes) {
  integrate_idle();
  const double j = static_cast<double>(bytes) * cfg_.tx_joule_per_byte;
  spent_tx_ += j;
  drain(j);
}

void Battery::drain_rx_bytes(std::uint64_t bytes) {
  integrate_idle();
  const double j = static_cast<double>(bytes) * cfg_.rx_joule_per_byte;
  spent_rx_ += j;
  drain(j);
}

void Battery::drain_cpu(sim::Time busy) {
  integrate_idle();
  const double j = busy.to_millis() * cfg_.cpu_joule_per_ms;
  spent_cpu_ += j;
  drain(j);
}

double Battery::remaining_joules() const {
  integrate_idle();
  return std::max(remaining_, 0.0);
}

}  // namespace mcs::station
