#pragma once

#include <cstdint>
#include <list>

#include "sim/contract.h"

#include <optional>
#include <string>
#include <unordered_map>

namespace mcs::station {

// Byte-budgeted LRU cache for browser pages; the budget comes from the
// device's RAM (Table 2), so small handhelds evict aggressively.
template <typename V>
class LruCache {
 public:
  explicit LruCache(std::uint64_t budget_bytes) : budget_{budget_bytes} {}

  // `bytes` is the accounted size of the value (payload, not struct size).
  void put(const std::string& key, V value, std::uint64_t bytes) {
    if (bytes > budget_) return;  // would never fit
    erase(key);
    order_.push_front(key);
    entries_[key] = Entry{std::move(value), bytes, order_.begin()};
    used_ += bytes;
    while (used_ > budget_ && !order_.empty()) {
      evict_one();
    }
    MCS_INVARIANT(used_ <= budget_,
                  "LRU cache exceeded its byte budget after eviction");
    MCS_INVARIANT(entries_.size() == order_.size(),
                  "LRU cache index and recency list diverged");
  }

  // Refreshes recency on hit.
  std::optional<V> get(const std::string& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.erase(it->second.where);
    order_.push_front(key);
    it->second.where = order_.begin();
    return it->second.value;
  }

  bool erase(const std::string& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    MCS_INVARIANT(used_ >= it->second.bytes,
                  "LRU cache byte accounting underflow on erase");
    used_ -= it->second.bytes;
    order_.erase(it->second.where);
    entries_.erase(it);
    return true;
  }

  void clear() {
    entries_.clear();
    order_.clear();
    used_ = 0;
  }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t budget_bytes() const { return budget_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    V value;
    std::uint64_t bytes = 0;
    typename std::list<std::string>::iterator where;
  };

  void evict_one() {
    const std::string victim = order_.back();
    order_.pop_back();
    auto it = entries_.find(victim);
    MCS_ASSERT(it != entries_.end(),
               "LRU recency list names a key missing from the index");
    MCS_INVARIANT(used_ >= it->second.bytes,
                  "LRU cache byte accounting underflow on eviction");
    used_ -= it->second.bytes;
    entries_.erase(it);
  }

  std::uint64_t budget_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::list<std::string> order_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace mcs::station
