#pragma once

#include <functional>
#include <memory>
#include <string>

#include "middleware/wap_gateway.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "security/wtls.h"
#include "middleware/wbxml.h"
#include "station/battery.h"
#include "station/cache.h"
#include "station/device.h"

namespace mcs::station {

// How the microbrowser reaches the web: through a WAP gateway (WTP/WDP +
// WBXML decks) or an i-mode gateway (persistent HTTP + cHTML). Table 3's
// two middleware columns.
enum class BrowserMode { kWap, kImode };

struct BrowserConfig {
  BrowserMode mode = BrowserMode::kWap;
  net::Endpoint gateway;  // WAP: WDP endpoint; i-mode: HTTP endpoint
  middleware::WtpConfig wtp;
  // WTLS (WAP mode only): run the handshake against the gateway and seal
  // every WSP transaction. The handset trusts certificates signed by ca_key
  // (its burned-in root).
  bool use_wtls = false;
  std::uint64_t wtls_ca_key = middleware::kDefaultWtlsCaKey;
};

// The microbrowser on a mobile station: issues page requests through the
// middleware, decodes/parses the returned deck, charges the device's CPU
// and battery for parse/render work, and caches pages in a RAM-budgeted LRU.
class MicroBrowser {
 public:
  struct PageResult {
    bool ok = false;
    int status = 0;
    std::string title;
    std::string content;        // decoded markup (WML or cHTML text)
    std::size_t over_air_bytes = 0;
    bool from_cache = false;
    sim::Time network_time;
    sim::Time parse_time;
    sim::Time render_time;
    sim::Time total_time;
  };
  using PageCallback = std::function<void(PageResult)>;

  MicroBrowser(net::Node& station, DeviceProfile device, BrowserConfig cfg,
               transport::UdpStack* udp, transport::TcpStack* tcp);
  MicroBrowser(const MicroBrowser&) = delete;
  MicroBrowser& operator=(const MicroBrowser&) = delete;

  // Fetch and "render" a page; url is "host:port/path" or "http://...".
  void browse(const std::string& url, PageCallback cb);

  Battery& battery() { return battery_; }
  const DeviceProfile& device() const { return device_; }
  LruCache<PageResult>& cache() { return cache_; }
  sim::StatsRegistry& stats() { return stats_; }
  const sim::StatsRegistry& stats() const { return stats_; }
  bool wtls_established() const { return wtls_channel_.has_value(); }

 private:
  struct CachedPage {
    std::string content;
    std::string title;
    int status = 0;
  };

  // `page` is the browse span (obs/trace.h); parse/render child spans and
  // outgoing-request stamping hang off it.
  void finish_with_content(const std::string& url, int status,
                           std::string&& content, std::size_t air_bytes,
                           sim::Time started, bool was_wbxml,
                           obs::TraceContext page, PageCallback cb);
  // WAP+WTLS path: establish the session if needed, then run one sealed
  // WSP transaction.
  void secure_invoke(const std::string& url, sim::Time started,
                     obs::TraceContext page, PageCallback cb);
  // `air_bytes` of 0 means "use the result's size" (plain path); the WTLS
  // path passes the sealed wire size explicitly.
  void wsp_result(const std::string& url, sim::Time started,
                  std::optional<std::string>&& result, std::size_t air_bytes,
                  obs::TraceContext page, PageCallback cb);

  net::Node& station_;
  DeviceProfile device_;
  BrowserConfig cfg_;
  Battery battery_;
  LruCache<PageResult> cache_;
  std::unique_ptr<middleware::WtpEndpoint> wtp_;  // WAP mode
  std::unique_ptr<host::HttpClient> http_;        // i-mode mode
  sim::Rng rng_{0xB205E2ull};
  std::optional<security::SecureChannel> wtls_channel_;
  bool wtls_handshaking_ = false;
  struct SecureWaiter {
    std::string url;
    obs::TraceContext page;
    PageCallback cb;
  };
  std::vector<SecureWaiter> wtls_waiters_;
  sim::StatsRegistry stats_;
  // Telemetry handles, cached at construction (obs/metrics.h): null when no
  // registry is ambient, so each update is one predictable branch.
  obs::TsCounter* m_browses_ = obs::metric_counter("station.browse");
  obs::TsCounter* m_cache_hits_ = obs::metric_counter("station.cache_hits");
  obs::TsLogHist* m_page_us_ = obs::metric_histogram("station.page_us");
};

}  // namespace mcs::station
