#include "station/browser.h"

#include "sim/arena.h"
#include "sim/logging.h"
#include "sim/util.h"

namespace mcs::station {

namespace {
// Local WDP port for the phone-side WTP endpoint.
constexpr std::uint16_t kPhoneWdpPort = 9200;
}  // namespace

MicroBrowser::MicroBrowser(net::Node& station, DeviceProfile device,
                           BrowserConfig cfg, transport::UdpStack* udp,
                           transport::TcpStack* tcp)
    : station_{station},
      device_{std::move(device)},
      cfg_{cfg},
      battery_{station.sim(), device_.battery},
      cache_{device_.cache_budget_bytes()} {
  if (cfg_.mode == BrowserMode::kWap) {
    wtp_ = std::make_unique<middleware::WtpEndpoint>(*udp, kPhoneWdpPort,
                                                     cfg_.wtp);
  } else {
    http_ = std::make_unique<host::HttpClient>(*tcp);
  }
}

void MicroBrowser::browse(const std::string& url, PageCallback cb) {
  const sim::Time started = station_.sim().now();
  stats_.counter("page_requests").add();
  obs::metric_add(m_browses_);

  // Browse span: child of the driver's request when one is active, else its
  // own trace root (a directly driven browser still yields a span tree).
  const obs::TraceContext page =
      obs::active_context().sampled()
          ? obs::begin_span(obs::Component::kStation, "browse", started)
          : obs::start_trace(obs::Component::kStation, "browse", started);
  PageCallback done = [this, page, started,
                       cb = std::move(cb)](PageResult r) mutable {
    obs::end_span(page, station_.sim().now());
    obs::metric_record(m_page_us_,
                       (station_.sim().now() - started).to_micros());
    cb(std::move(r));
  };

  // Cache hit: only render cost applies.
  if (auto hit = cache_.get(url); hit.has_value()) {
    stats_.counter("cache_hits").add();
    obs::metric_add(m_cache_hits_);
    PageResult r = *hit;
    r.from_cache = true;
    r.network_time = sim::Time::zero();
    const middleware::MarkupDocument doc = middleware::parse_markup(
        r.content, cfg_.mode == BrowserMode::kWap ? middleware::MarkupKind::kWml
                                                  : middleware::MarkupKind::kChtml);
    r.render_time = sim::Time::millis(static_cast<std::int64_t>(
        device_.render_ms_per_element() *
        static_cast<double>(doc.root.element_count())));
    battery_.drain_cpu(r.render_time);
    const obs::TraceContext render = obs::begin_child(
        page, obs::Component::kStation, "parse_render", started);
    station_.sim().after(r.render_time, [this, r = std::move(r), started,
                                         render,
                                         cb = std::move(done)]() mutable {
      obs::end_span(render, station_.sim().now());
      r.total_time = station_.sim().now() - started;
      cb(std::move(r));
    });
    return;
  }

  if (cfg_.mode == BrowserMode::kWap) {
    if (cfg_.use_wtls) {
      secure_invoke(url, started, page, std::move(done));
      return;
    }
    auto payload = middleware::wsp_encode_request(url);
    battery_.drain_tx_bytes(payload.size() + 36);  // + WDP/IP framing
    obs::ActiveScope scope{page};
    wtp_->invoke(cfg_.gateway, std::move(payload),
                 [this, url, started, page, cb = std::move(done)](
                     std::optional<std::string> result) mutable {
      wsp_result(url, started, std::move(result), 0, page, std::move(cb));
    });
    return;
  }

  // i-mode: GET /<host:port/path> through the gateway over persistent HTTP.
  const auto path = sim::cat("/", url);
  battery_.drain_tx_bytes(path.size() + 60);
  obs::ActiveScope scope{page};
  http_->get(cfg_.gateway, path,
             [this, url, started, page, cb = std::move(done)](
                 std::optional<host::HttpResponse> resp) mutable {
    if (!resp.has_value()) {
      stats_.counter("failures").add();
      PageResult r;
      r.total_time = station_.sim().now() - started;
      cb(std::move(r));
      return;
    }
    const std::size_t air = resp->serialize().size();
    battery_.drain_rx_bytes(air);
    finish_with_content(url, resp->status, std::move(resp->body), air,
                        started, /*was_wbxml=*/false, page, std::move(cb));
  });
}

// Decode one (possibly absent) WTP result into a page.
void MicroBrowser::wsp_result(const std::string& url, sim::Time started,
                              std::optional<std::string>&& result,
                              std::size_t air_bytes, obs::TraceContext page,
                              PageCallback cb) {
  if (!result.has_value()) {
    stats_.counter("failures").add();
    PageResult r;
    r.total_time = station_.sim().now() - started;
    cb(std::move(r));
    return;
  }
  battery_.drain_rx_bytes(result->size());
  auto wsp = middleware::wsp_decode_response(*result);
  if (!wsp.has_value()) {
    stats_.counter("failures").add();
    PageResult r;
    r.total_time = station_.sim().now() - started;
    cb(std::move(r));
    return;
  }
  const bool wbxml = wsp->content_type == "application/vnd.wap.wmlc";
  finish_with_content(url, wsp->status, std::move(wsp->body),
                      air_bytes != 0 ? air_bytes : result->size(), started,
                      wbxml, page, std::move(cb));
}

void MicroBrowser::secure_invoke(const std::string& url, sim::Time started,
                                 obs::TraceContext page, PageCallback cb) {
  if (!wtls_channel_.has_value()) {
    wtls_waiters_.push_back(SecureWaiter{url, page, std::move(cb)});
    if (wtls_handshaking_) return;
    wtls_handshaking_ = true;
    stats_.counter("wtls_handshakes").add();
    // The handshake object lives across the round trip.
    auto hs = std::make_shared<security::WtlsHandshake>(
        security::WtlsHandshake::Role::kClient, rng_.fork(),
        cfg_.wtls_ca_key);
    auto hello = sim::cat("WTLS-HELLO ", hs->client_hello());
    battery_.drain_tx_bytes(hello.size() + 36);
    obs::ActiveScope scope{page};
    wtp_->invoke(cfg_.gateway, std::move(hello),
                 [this, hs](std::optional<std::string> result) {
      wtls_handshaking_ = false;
      auto waiters = std::move(wtls_waiters_);
      wtls_waiters_.clear();
      const bool ok =
          result.has_value() && sim::starts_with(*result, "WTLS-SHELLO ") &&
          hs->on_server_hello(
                std::string_view{result->data() + 12, result->size() - 12})
              .has_value();
      if (!ok) {
        stats_.counter("wtls_failures").add();
        for (auto& w : waiters) {
          PageResult r;
          w.cb(std::move(r));
        }
        return;
      }
      wtls_channel_.emplace(hs->channel());
      // Flush everything that queued behind the handshake.
      for (auto& w : waiters) {
        secure_invoke(w.url, station_.sim().now(), w.page, std::move(w.cb));
      }
    });
    return;
  }
  auto sealed = sim::cat(
      "WTLS-DATA ", wtls_channel_->seal(middleware::wsp_encode_request(url)));
  battery_.drain_tx_bytes(sealed.size() + 36);
  obs::ActiveScope scope{page};
  wtp_->invoke(cfg_.gateway, std::move(sealed),
               [this, url, started, page, cb = std::move(cb)](
                   std::optional<std::string> result) mutable {
    if (result.has_value() && sim::starts_with(*result, "WTLS-DATA ")) {
      auto opened = wtls_channel_->open(
          std::string_view{result->data() + 10, result->size() - 10});
      if (opened.has_value()) {
        wsp_result(url, started, std::move(opened), result->size(), page,
                   std::move(cb));
        return;
      }
      stats_.counter("wtls_record_errors").add();
    } else if (result.has_value() &&
               sim::starts_with(*result, "WTLS-ERR")) {
      // Session lost at the gateway: drop ours so the next browse redials.
      wtls_channel_.reset();
      stats_.counter("wtls_failures").add();
    }
    wsp_result(url, started, std::nullopt, 0, page, std::move(cb));
  });
}

void MicroBrowser::finish_with_content(const std::string& url, int status,
                                       std::string&& content,
                                       std::size_t air_bytes,
                                       sim::Time started, bool was_wbxml,
                                       obs::TraceContext page,
                                       PageCallback cb) {
  PageResult r;
  r.status = status;
  r.ok = status == 200;
  r.over_air_bytes = air_bytes;
  r.network_time = station_.sim().now() - started;

  // Decode WBXML decks back to WML text.
  if (was_wbxml) {
    const auto doc = middleware::wbxml_decode(content);
    if (!doc.has_value()) {
      stats_.counter("decode_errors").add();
      r.ok = false;
      r.total_time = station_.sim().now() - started;
      cb(std::move(r));
      return;
    }
    content = doc->serialize();
  }
  r.content = std::move(content);

  const middleware::MarkupDocument doc = middleware::parse_markup(
      r.content, cfg_.mode == BrowserMode::kWap ? middleware::MarkupKind::kWml
                                                : middleware::MarkupKind::kChtml);
  r.title = doc.title();
  r.parse_time = sim::Time::micros(static_cast<std::int64_t>(
      device_.parse_ms_per_kb() * 1000.0 *
      static_cast<double>(r.content.size()) / 1024.0));
  r.render_time = sim::Time::millis(static_cast<std::int64_t>(
      device_.render_ms_per_element() *
      static_cast<double>(doc.root.element_count())));
  battery_.drain_cpu(r.parse_time + r.render_time);

  if (r.ok) {
    stats_.counter("pages_loaded").add();
    // Heuristic of the era: responses to parameterised requests are dynamic
    // (CGI output) and must not be reused; plain resources are cacheable.
    if (url.find('?') == std::string::npos) {
      cache_.put(url, r, r.content.size());
    }
  }
  const obs::TraceContext work = obs::begin_child(
      page, obs::Component::kStation, "parse_render", station_.sim().now());
  station_.sim().after(r.parse_time + r.render_time,
                       [this, r = std::move(r), started, work,
                        cb = std::move(cb)]() mutable {
    obs::end_span(work, station_.sim().now());
    r.total_time = station_.sim().now() - started;
    cb(std::move(r));
  });
}

}  // namespace mcs::station
