#pragma once

#include "sim/simulator.h"
#include "station/device.h"

namespace mcs::station {

// Energy accounting for one mobile station: explicit radio/CPU drains plus
// idle power integrated lazily over simulation time. "Mobile stations are
// limited by ... low battery power" (§8).
class Battery {
 public:
  Battery(sim::Simulator& sim, BatteryConfig cfg)
      : sim_{sim}, cfg_{cfg}, remaining_{cfg.capacity_joules},
        last_update_{sim.now()} {}

  void drain_tx_bytes(std::uint64_t bytes);
  void drain_rx_bytes(std::uint64_t bytes);
  void drain_cpu(sim::Time busy);

  // Joules left after integrating idle drain up to now.
  double remaining_joules() const;
  double fraction_remaining() const {
    return remaining_joules() / cfg_.capacity_joules;
  }
  bool depleted() const { return remaining_joules() <= 0.0; }

  double spent_tx() const { return spent_tx_; }
  double spent_rx() const { return spent_rx_; }
  double spent_cpu() const { return spent_cpu_; }
  double spent_idle() const { return spent_idle_; }

  const BatteryConfig& config() const { return cfg_; }

 private:
  void integrate_idle() const;
  void drain(double joules) const;

  sim::Simulator& sim_;
  BatteryConfig cfg_;
  mutable double remaining_ = 0.0;
  mutable sim::Time last_update_;
  mutable double spent_tx_ = 0.0;
  mutable double spent_rx_ = 0.0;
  mutable double spent_cpu_ = 0.0;
  mutable double spent_idle_ = 0.0;
};

}  // namespace mcs::station
