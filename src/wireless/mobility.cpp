#include "wireless/mobility.h"

#include <algorithm>

#include "sim/contract.h"

namespace mcs::wireless {

RandomWaypointMobility::RandomWaypointMobility(sim::Simulator& sim,
                                               Position start, Config cfg,
                                               sim::Rng rng)
    : sim_{sim}, cfg_{cfg}, rng_{rng}, from_{start}, to_{start} {
  MCS_ASSERT(cfg_.width_m > 0.0 && cfg_.height_m > 0.0,
             "random waypoint area must have positive extent");
  MCS_ASSERT(cfg_.min_speed_mps > 0.0 &&
                 cfg_.min_speed_mps <= cfg_.max_speed_mps,
             "random waypoint speeds must satisfy 0 < min <= max");
  MCS_ASSERT(!cfg_.pause.is_negative(),
             "random waypoint pause must be non-negative");
  leg_start_ = sim_.now();
  leg_end_ = sim_.now();
  pick_next_waypoint();
}

RandomWaypointMobility::~RandomWaypointMobility() {
  if (timer_ != sim::kInvalidEventId) sim_.cancel(timer_);
}

void RandomWaypointMobility::pick_next_waypoint() {
  from_ = position();
  to_ = Position{rng_.uniform(0.0, cfg_.width_m),
                 rng_.uniform(0.0, cfg_.height_m)};
  const double speed = rng_.uniform(cfg_.min_speed_mps, cfg_.max_speed_mps);
  const double dist = from_.distance_to(to_);
  leg_start_ = sim_.now();
  leg_end_ = leg_start_ + sim::Time::seconds(dist / std::max(speed, 1e-6));
  MCS_INVARIANT(to_.x >= 0.0 && to_.x <= cfg_.width_m && to_.y >= 0.0 &&
                    to_.y <= cfg_.height_m,
                "random waypoint left the configured bounding box");
  MCS_INVARIANT(leg_end_ >= leg_start_,
                "random waypoint leg must not end before it starts");
  timer_ = sim_.at(leg_end_ + cfg_.pause, [this] { pick_next_waypoint(); });
}

Position RandomWaypointMobility::position() const {
  const sim::Time now = sim_.now();
  if (now >= leg_end_) return to_;
  if (now <= leg_start_ || leg_end_ == leg_start_) return from_;
  const double f = (now - leg_start_) / (leg_end_ - leg_start_);
  return Position{from_.x + (to_.x - from_.x) * f,
                  from_.y + (to_.y - from_.y) * f};
}

}  // namespace mcs::wireless
