#include "wireless/mobility.h"

#include <algorithm>

namespace mcs::wireless {

RandomWaypointMobility::RandomWaypointMobility(sim::Simulator& sim,
                                               Position start, Config cfg,
                                               sim::Rng rng)
    : sim_{sim}, cfg_{cfg}, rng_{rng}, from_{start}, to_{start} {
  leg_start_ = sim_.now();
  leg_end_ = sim_.now();
  pick_next_waypoint();
}

RandomWaypointMobility::~RandomWaypointMobility() {
  if (timer_ != sim::kInvalidEventId) sim_.cancel(timer_);
}

void RandomWaypointMobility::pick_next_waypoint() {
  from_ = position();
  to_ = Position{rng_.uniform(0.0, cfg_.width_m),
                 rng_.uniform(0.0, cfg_.height_m)};
  const double speed = rng_.uniform(cfg_.min_speed_mps, cfg_.max_speed_mps);
  const double dist = from_.distance_to(to_);
  leg_start_ = sim_.now();
  leg_end_ = leg_start_ + sim::Time::seconds(dist / std::max(speed, 1e-6));
  timer_ = sim_.at(leg_end_ + cfg_.pause, [this] { pick_next_waypoint(); });
}

Position RandomWaypointMobility::position() const {
  const sim::Time now = sim_.now();
  if (now >= leg_end_) return to_;
  if (now <= leg_start_ || leg_end_ == leg_start_) return from_;
  const double f = (now - leg_start_) / (leg_end_ - leg_start_);
  return Position{from_.x + (to_.x - from_.x) * f,
                  from_.y + (to_.y - from_.y) * f};
}

}  // namespace mcs::wireless
