#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/channel.h"
#include "net/node.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "wireless/mobility.h"
#include "wireless/phy_profiles.h"

namespace mcs::wireless {

struct WirelessConfig {
  PhyProfile phy;
  // CSMA/CA contention: each extra active station inflates service time by
  // this factor. Scheduled (cellular) MACs set scheduled_mac instead.
  double csma_contention_alpha = 0.08;
  bool scheduled_mac = false;
  // Gilbert-Elliott burst errors per station (the error-prone wireless
  // channel of §5.2): in the bad state, frames are additionally lost with
  // `burst_loss` probability.
  double burst_loss = 0.35;
  double p_good_to_bad = 0.005;  // per frame
  double p_bad_to_good = 0.25;   // per frame
  std::size_t queue_limit_bytes = 128 * 1024;
  // Circuit switching (1G/2G): concurrent calls the cell can carry.
  int circuit_channels = 8;
};

// One wireless cell: an access point (or cellular base station) plus the
// stations associated with it, sharing a radio medium. Implements
//
//  * byte-accurate serialization at the PHY's effective rate,
//  * CSMA contention inflation or scheduled MAC,
//  * range checking + distance-dependent loss + Gilbert-Elliott bursts,
//  * packet switching (shared queue) or circuit switching (per-call
//    dedicated channel with call setup latency and blocking).
class WirelessMedium : public net::Channel {
 public:
  WirelessMedium(sim::Simulator& sim, std::string name, Position ap_position,
                 WirelessConfig cfg, sim::Rng rng);

  const std::string& name() const { return name_; }
  const WirelessConfig& config() const { return cfg_; }
  Position ap_position() const { return ap_position_; }

  // The wired-side attachment point (AP/BS interface).
  void set_ap_interface(net::Interface* ap);
  net::Interface* ap_interface() const { return ap_; }

  // --- Association ----------------------------------------------------------
  void associate(net::Interface* station, const MobilityModel* mobility);
  void disassociate(net::Interface* station);
  bool is_associated(const net::Interface* station) const;
  std::size_t station_count() const { return stations_.size(); }
  // Fired after every association change (wire to Network::compute_routes).
  std::function<void()> on_topology_changed;

  // --- Circuit switching (Table 5, 1G/2G) -----------------------------------
  // Request a dedicated channel; `done(granted)` fires after the standard's
  // call-setup time, or immediately with false if the cell is full.
  void place_call(net::Interface* station, std::function<void(bool)> done);
  void end_call(net::Interface* station);
  bool has_call(const net::Interface* station) const;
  int calls_in_progress() const { return calls_; }

  // --- net::Channel -----------------------------------------------------------
  void transmit(net::Interface* from, net::IpAddress next_hop,
                net::PacketPtr p) override;
  double rate_bps(const net::Interface* from) const override;
  std::vector<Edge> edges() const override;

  sim::StatsRegistry& stats() { return stats_; }
  const sim::StatsRegistry& stats() const { return stats_; }

 private:
  struct PendingTx {
    net::Interface* from;
    net::IpAddress next_hop;
    net::PacketPtr packet;
  };

  struct Station {
    const MobilityModel* mobility = nullptr;
    bool in_call = false;
    bool ge_bad = false;  // Gilbert-Elliott channel state
    // Circuit mode: dedicated channel queue.
    std::deque<PendingTx> queue;
    std::size_t queued_bytes = 0;
    bool busy = false;
  };

  bool circuit_mode() const { return cfg_.phy.switching == Switching::kCircuit; }
  double contention_factor() const;
  sim::Time service_time(const net::PacketPtr& p) const;
  void start_shared_service();
  void start_circuit_service(net::Interface* station);
  // `air` is the in-flight "air.tx" span: closed here at the delivery or
  // drop point so air time includes serialization and propagation.
  void deliver(net::Interface* from, net::IpAddress next_hop,
               const net::PacketPtr& p, obs::TraceContext air);
  net::Interface* find_destination(net::IpAddress addr) const;
  Position position_of(const net::Interface* iface) const;
  // The mobile endpoint of a transmission (AP side has no GE state).
  Station* station_state(const net::Interface* iface);

  sim::Simulator& sim_;
  std::string name_;
  Position ap_position_;
  WirelessConfig cfg_;
  sim::Rng rng_;
  net::Interface* ap_ = nullptr;
  std::unordered_map<const net::Interface*, Station> stations_;
  // Packet mode: one shared transmission queue (half-duplex medium).
  std::deque<PendingTx> shared_queue_;
  std::size_t shared_queued_bytes_ = 0;
  bool shared_busy_ = false;
  int calls_ = 0;
  sim::StatsRegistry stats_;
  // Telemetry handles, cached at construction (obs/metrics.h); shared names
  // across cells so "wireless.*" totals the whole air tier.
  obs::TsCounter* m_frames_ = obs::metric_counter("wireless.frames");
  obs::TsCounter* m_tx_bytes_ = obs::metric_counter("wireless.tx_bytes");
  obs::TsCounter* m_drops_ = obs::metric_counter("wireless.drops");
  obs::TsGauge* m_queued_bytes_ = obs::metric_gauge("wireless.queued_bytes");
};

}  // namespace mcs::wireless
