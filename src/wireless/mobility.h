#pragma once

#include <cmath>
#include <memory>

#include "sim/random.h"
#include "sim/simulator.h"

namespace mcs::wireless {

// Planar position in metres.
struct Position {
  double x = 0.0;
  double y = 0.0;

  double distance_to(const Position& o) const {
    const double dx = x - o.x;
    const double dy = y - o.y;
    return std::sqrt(dx * dx + dy * dy);
  }
  friend bool operator==(const Position&, const Position&) = default;
};

// Supplies the current position of a station; the wireless medium queries it
// for range/path-loss decisions, the handoff manager for cell selection.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Position position() const = 0;
};

// A station that never moves (and access points).
class FixedPosition final : public MobilityModel {
 public:
  explicit FixedPosition(Position p) : pos_{p} {}
  Position position() const override { return pos_; }
  void move_to(Position p) { pos_ = p; }

 private:
  Position pos_;
};

// Constant-velocity straight-line motion; position is a pure function of the
// simulation clock (no events needed). Models vehicles and walking users.
class LinearMobility final : public MobilityModel {
 public:
  LinearMobility(sim::Simulator& sim, Position start, double velocity_x_mps,
                 double velocity_y_mps)
      : sim_{sim},
        start_{start},
        t0_{sim.now()},
        vx_{velocity_x_mps},
        vy_{velocity_y_mps} {}

  Position position() const override {
    const double dt = (sim_.now() - t0_).to_seconds();
    return Position{start_.x + vx_ * dt, start_.y + vy_ * dt};
  }

 private:
  sim::Simulator& sim_;
  Position start_;
  sim::Time t0_;
  double vx_ = 0.0;
  double vy_ = 0.0;
};

// Random waypoint: pick a uniform destination in the bounding box, move to
// it at a uniform random speed, pause, repeat. The standard ad hoc /
// cellular-coverage evaluation model.
class RandomWaypointMobility final : public MobilityModel {
 public:
  struct Config {
    double width_m = 1000.0;
    double height_m = 1000.0;
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;   // pedestrian by default
    sim::Time pause = sim::Time::seconds(2.0);
  };

  RandomWaypointMobility(sim::Simulator& sim, Position start, Config cfg,
                         sim::Rng rng);
  ~RandomWaypointMobility();

  Position position() const override;

 private:
  void pick_next_waypoint();

  sim::Simulator& sim_;
  Config cfg_;
  sim::Rng rng_;
  Position from_;
  Position to_;
  sim::Time leg_start_;
  sim::Time leg_end_;
  sim::EventId timer_ = sim::kInvalidEventId;
};

}  // namespace mcs::wireless
