#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "wireless/medium.h"

namespace mcs::wireless {

struct HandoffConfig {
  sim::Time check_interval = sim::Time::millis(500);
  // A candidate cell must be this much closer before we switch; prevents
  // ping-ponging on the boundary between two cells.
  double hysteresis_m = 20.0;
};

// Tracks one mobile station across a set of cells: periodically picks the
// best (nearest in-range) cell and re-associates on change. Handoff events
// feed Mobile IP re-registration and TCP handoff notifications.
class HandoffManager {
 public:
  HandoffManager(sim::Simulator& sim, net::Interface* station,
                 const MobilityModel* mobility,
                 std::vector<WirelessMedium*> cells, HandoffConfig cfg = {});
  ~HandoffManager();
  HandoffManager(const HandoffManager&) = delete;
  HandoffManager& operator=(const HandoffManager&) = delete;

  // `from` may be null (initial attach); `to` may be null (coverage lost).
  std::function<void(WirelessMedium* from, WirelessMedium* to)> on_handoff;

  // Associate with the best cell now and begin periodic checks.
  void start();
  void stop();

  WirelessMedium* current() const { return current_; }
  std::uint64_t handoff_count() const { return handoffs_; }
  std::uint64_t coverage_losses() const { return coverage_losses_; }

 private:
  void check();
  WirelessMedium* best_cell() const;
  void switch_to(WirelessMedium* target);

  sim::Simulator& sim_;
  net::Interface* station_;
  const MobilityModel* mobility_;
  std::vector<WirelessMedium*> cells_;
  HandoffConfig cfg_;
  WirelessMedium* current_ = nullptr;
  sim::EventId timer_ = sim::kInvalidEventId;
  std::uint64_t handoffs_ = 0;
  std::uint64_t coverage_losses_ = 0;
  // Telemetry handle, cached at construction (obs/metrics.h).
  obs::TsCounter* m_handoffs_ = obs::metric_counter("mobileip.handoffs");
};

}  // namespace mcs::wireless
