#include "wireless/phy_profiles.h"

#include <stdexcept>

namespace mcs::wireless {
namespace {

PhyProfile make(std::string name, std::string gen, double rate_bps,
                double range_m, std::string modulation, double band_ghz,
                Switching sw, sim::Time setup, double efficiency,
                double base_loss) {
  PhyProfile p;
  p.name = std::move(name);
  p.generation = std::move(gen);
  p.data_rate_bps = rate_bps;
  p.range_m = range_m;
  p.modulation = std::move(modulation);
  p.band_ghz = band_ghz;
  p.switching = sw;
  p.call_setup = setup;
  p.mac_efficiency = efficiency;
  p.base_loss_rate = base_loss;
  return p;
}

}  // namespace

// Table 4 rows. Ranges use the midpoint of the paper's typical range.
PhyProfile bluetooth() {
  return make("Bluetooth", "WPAN", 1e6, 10, "GFSK", 2.4, Switching::kPacket,
              sim::Time::zero(), 0.70, 0.01);
}
PhyProfile wifi_802_11b() {
  return make("802.11b", "WLAN", 11e6, 100, "HR-DSSS", 2.4, Switching::kPacket,
              sim::Time::zero(), 0.65, 0.01);
}
PhyProfile wifi_802_11a() {
  return make("802.11a", "WLAN", 54e6, 100, "OFDM", 5.0, Switching::kPacket,
              sim::Time::zero(), 0.55, 0.01);
}
PhyProfile hiperlan2() {
  return make("HiperLAN2", "WLAN", 54e6, 300, "OFDM", 5.0, Switching::kPacket,
              sim::Time::zero(), 0.58, 0.01);
}
PhyProfile wifi_802_11g() {
  return make("802.11g", "WLAN", 54e6, 150, "OFDM", 2.4, Switching::kPacket,
              sim::Time::zero(), 0.55, 0.01);
}

std::vector<PhyProfile> wlan_profiles() {
  return {bluetooth(), wifi_802_11b(), wifi_802_11a(), hiperlan2(),
          wifi_802_11g()};
}

// Table 5 rows. Analog 1G voice channels are modelled as modem-grade data;
// circuit setup times reflect classic call establishment.
PhyProfile amps() {
  return make("AMPS", "1G", 9.6e3, 20000, "FM", 0.8, Switching::kCircuit,
              sim::Time::seconds(6.0), 0.90, 0.02);
}
PhyProfile tacs() {
  return make("TACS", "1G", 8.0e3, 20000, "FM", 0.9, Switching::kCircuit,
              sim::Time::seconds(6.0), 0.90, 0.02);
}
PhyProfile gsm() {
  return make("GSM", "2G", 14.4e3, 10000, "GMSK", 0.9, Switching::kCircuit,
              sim::Time::seconds(3.0), 0.92, 0.01);
}
PhyProfile tdma_is136() {
  return make("TDMA", "2G", 9.6e3, 10000, "pi/4-DQPSK", 1.9,
              Switching::kCircuit, sim::Time::seconds(3.0), 0.92, 0.01);
}
PhyProfile cdma_is95() {
  return make("CDMA", "2G", 14.4e3, 10000, "DSSS", 1.9, Switching::kCircuit,
              sim::Time::seconds(3.0), 0.92, 0.01);
}
PhyProfile gprs() {
  // "GPRS can support data rates of only about 100 kbps" (paper §6.2).
  return make("GPRS", "2.5G", 100e3, 10000, "GMSK", 0.9, Switching::kPacket,
              sim::Time::zero(), 0.85, 0.01);
}
PhyProfile edge() {
  // "its upgraded version ... capable of supporting 384 kbps" (paper §6.2).
  return make("EDGE", "2.5G", 384e3, 10000, "8PSK", 0.9, Switching::kPacket,
              sim::Time::zero(), 0.85, 0.01);
}
PhyProfile wcdma() {
  // W-CDMA "can support speeds of 384Kbps or faster" (paper §5.1); 2 Mbps
  // is the indoor/stationary peak of the UMTS specification.
  return make("WCDMA", "3G", 2e6, 5000, "DSSS", 2.1, Switching::kPacket,
              sim::Time::zero(), 0.80, 0.01);
}
PhyProfile cdma2000() {
  return make("CDMA2000", "3G", 2.4e6, 5000, "DSSS", 1.9, Switching::kPacket,
              sim::Time::zero(), 0.80, 0.01);
}

std::vector<PhyProfile> cellular_profiles() {
  return {amps(),  tacs(), gsm(),   tdma_is136(), cdma_is95(),
          gprs(),  edge(), wcdma(), cdma2000()};
}

PhyProfile profile_by_name(const std::string& name) {
  for (const auto& p : wlan_profiles()) {
    if (p.name == name) return p;
  }
  for (const auto& p : cellular_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown PHY profile: " + name);
}

}  // namespace mcs::wireless
