#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace mcs::wireless {

// Circuit-switched standards dedicate a channel per call (setup latency,
// fixed rate); packet-switched standards share the medium and are always-on
// (Table 5's switching-technique column).
enum class Switching { kCircuit, kPacket };

// One radio standard from the paper's Table 4 (WLAN) or Table 5 (cellular).
// Rates/ranges are the paper's nominal figures; MAC efficiency and loss are
// the simulation's layer-2 model on top of them.
struct PhyProfile {
  std::string name;
  std::string generation;  // "WLAN"/"WPAN" or "1G".."3G"
  double data_rate_bps = 1e6;       // nominal maximum (paper's "Max. Data Rate")
  double range_m = 100.0;           // typical transmission range
  std::string modulation;           // GFSK, HR-DSSS, OFDM, FM, GMSK, DSSS...
  double band_ghz = 2.4;            // operational frequency band
  Switching switching = Switching::kPacket;
  sim::Time call_setup = sim::Time::zero();  // circuit-switched setup time
  double mac_efficiency = 0.7;      // goodput fraction of nominal rate
  double base_loss_rate = 0.0;      // residual frame loss at short range

  // Effective saturation throughput in bps after MAC overheads.
  double effective_rate_bps() const { return data_rate_bps * mac_efficiency; }
};

// --- Table 4: major WLAN standards -----------------------------------------
PhyProfile bluetooth();
PhyProfile wifi_802_11b();
PhyProfile wifi_802_11a();
PhyProfile hiperlan2();
PhyProfile wifi_802_11g();
// All five Table 4 rows, in the paper's order.
std::vector<PhyProfile> wlan_profiles();

// --- Table 5: major cellular wireless networks ------------------------------
PhyProfile amps();       // 1G, circuit
PhyProfile tacs();       // 1G, circuit
PhyProfile gsm();        // 2G, circuit
PhyProfile tdma_is136(); // 2G
PhyProfile cdma_is95();  // 2G
PhyProfile gprs();       // 2.5G, packet (~100 kbps per the paper)
PhyProfile edge();       // 2.5G, packet (384 kbps per the paper)
PhyProfile wcdma();      // 3G, packet
PhyProfile cdma2000();   // 3G, packet
// All nine Table 5 rows, generation order.
std::vector<PhyProfile> cellular_profiles();

// Lookup by name ("802.11b", "GPRS", ...); throws std::out_of_range if absent.
PhyProfile profile_by_name(const std::string& name);

}  // namespace mcs::wireless
