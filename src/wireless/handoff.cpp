#include "wireless/handoff.h"

#include <algorithm>
#include <limits>

#include "sim/contract.h"
#include "sim/logging.h"

namespace mcs::wireless {

HandoffManager::HandoffManager(sim::Simulator& sim, net::Interface* station,
                               const MobilityModel* mobility,
                               std::vector<WirelessMedium*> cells,
                               HandoffConfig cfg)
    : sim_{sim},
      station_{station},
      mobility_{mobility},
      cells_{std::move(cells)},
      cfg_{cfg} {
  MCS_ASSERT(station_ != nullptr, "handoff manager needs a station interface");
  MCS_ASSERT(mobility_ != nullptr, "handoff manager needs a mobility model");
  MCS_ASSERT(cfg_.hysteresis_m >= 0.0, "handoff hysteresis must be >= 0");
  MCS_ASSERT(cfg_.check_interval > sim::Time::zero(),
             "handoff check interval must be positive");
  for (const WirelessMedium* cell : cells_) {
    MCS_ASSERT(cell != nullptr, "handoff cell list contains a null cell");
  }
}

HandoffManager::~HandoffManager() { stop(); }

void HandoffManager::start() {
  check();
}

void HandoffManager::stop() {
  if (timer_ != sim::kInvalidEventId) {
    sim_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
  }
  MCS_INVARIANT(timer_ == sim::kInvalidEventId,
                "a stopped manager must leave no pending probe timer");
}

WirelessMedium* HandoffManager::best_cell() const {
  WirelessMedium* best = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  const Position pos = mobility_->position();
  for (WirelessMedium* cell : cells_) {
    const double d = pos.distance_to(cell->ap_position());
    if (d <= cell->config().phy.range_m && d < best_dist) {
      best_dist = d;
      best = cell;
    }
  }
  return best;
}

void HandoffManager::check() {
  const Position pos = mobility_->position();
  WirelessMedium* candidate = best_cell();
  bool switch_now = false;
  if (current_ == nullptr) {
    switch_now = candidate != nullptr;
  } else {
    const double cur_dist = pos.distance_to(current_->ap_position());
    if (cur_dist > current_->config().phy.range_m) {
      switch_now = true;  // lost coverage; take whatever is best (may be null)
    } else if (candidate != nullptr && candidate != current_) {
      const double cand_dist = pos.distance_to(candidate->ap_position());
      switch_now = cand_dist + cfg_.hysteresis_m < cur_dist;
    }
  }
  if (switch_now && candidate != current_) switch_to(candidate);
  timer_ = sim_.after(cfg_.check_interval, [this] { check(); });
}

void HandoffManager::switch_to(WirelessMedium* target) {
  MCS_ASSERT(target != current_, "switch_to() must change the associated cell");
  MCS_INVARIANT(target == nullptr ||
                    std::find(cells_.begin(), cells_.end(), target) !=
                        cells_.end(),
                "handoff target is not one of the managed cells");
  WirelessMedium* old = current_;
  if (old != nullptr) old->disassociate(station_);
  current_ = target;
  if (target != nullptr) {
    target->associate(station_, mobility_);
    if (old != nullptr) {
      ++handoffs_;
      obs::metric_add(m_handoffs_);
    }
  } else {
    ++coverage_losses_;
  }
  sim::logf(sim::LogLevel::kDebug, sim_.now(), "handoff %s: %s -> %s",
            station_->node()->name().c_str(),
            old != nullptr ? old->name().c_str() : "(none)",
            target != nullptr ? target->name().c_str() : "(none)");
  if (on_handoff) on_handoff(old, target);
}

}  // namespace mcs::wireless
