#include "wireless/medium.h"

#include <algorithm>

#include "obs/trace.h"
#include "sim/contract.h"
#include "sim/logging.h"

namespace mcs::wireless {

namespace {
// Radio propagation is effectively instantaneous at cell scale; a small
// constant covers preamble/IFS overheads.
constexpr sim::Time kAirPropagation = sim::Time::micros(5);
}  // namespace

WirelessMedium::WirelessMedium(sim::Simulator& sim, std::string name,
                               Position ap_position, WirelessConfig cfg,
                               sim::Rng rng)
    : sim_{sim},
      name_{std::move(name)},
      ap_position_{ap_position},
      cfg_{cfg},
      rng_{rng} {}

void WirelessMedium::set_ap_interface(net::Interface* ap) {
  MCS_ASSERT(ap != nullptr, "access point interface must exist");
  ap_ = ap;
  ap_->attach(this);
}

void WirelessMedium::associate(net::Interface* station,
                               const MobilityModel* mobility) {
  MCS_ASSERT(station != nullptr, "cannot associate a null interface");
  MCS_ASSERT(station != ap_,
             "the access point cannot associate with itself");
  stations_[station].mobility = mobility;
  station->attach(this);
  stats_.counter("associations").add();
  if (on_topology_changed) on_topology_changed();
}

void WirelessMedium::disassociate(net::Interface* station) {
  auto it = stations_.find(station);
  if (it == stations_.end()) return;
  if (it->second.in_call) end_call(station);
  stations_.erase(it);
  if (station->channel() == this) station->detach();
  MCS_INVARIANT(!stations_.contains(station) && !has_call(station),
                "a disassociated station must hold neither an association "
                "record nor a reserved circuit channel");
  stats_.counter("disassociations").add();
  if (on_topology_changed) on_topology_changed();
}

bool WirelessMedium::is_associated(const net::Interface* station) const {
  return stations_.contains(station);
}

void WirelessMedium::place_call(net::Interface* station,
                                std::function<void(bool)> done) {
  auto it = stations_.find(station);
  if (it == stations_.end() || !circuit_mode()) {
    done(false);
    return;
  }
  if (calls_ >= cfg_.circuit_channels) {
    stats_.counter("calls_blocked").add();
    done(false);
    return;
  }
  ++calls_;  // channel reserved during setup
  MCS_INVARIANT(calls_ <= cfg_.circuit_channels,
                "reserving a setup channel can never oversubscribe the "
                "cell's circuit capacity");
  stats_.counter("calls_placed").add();
  sim_.after(cfg_.phy.call_setup, [this, station, done = std::move(done)] {
    auto sit = stations_.find(station);
    if (sit == stations_.end()) {
      --calls_;
      done(false);
      return;
    }
    sit->second.in_call = true;
    done(true);
  });
}

void WirelessMedium::end_call(net::Interface* station) {
  auto it = stations_.find(station);
  if (it == stations_.end() || !it->second.in_call) return;
  it->second.in_call = false;
  MCS_ASSERT(calls_ > 0,
             "a station marked in_call implies at least one reserved "
             "circuit channel to release");
  --calls_;
  stats_.counter("calls_ended").add();
}

bool WirelessMedium::has_call(const net::Interface* station) const {
  auto it = stations_.find(station);
  return it != stations_.end() && it->second.in_call;
}

double WirelessMedium::contention_factor() const {
  if (cfg_.scheduled_mac || stations_.size() <= 1) return 1.0;
  return 1.0 + cfg_.csma_contention_alpha *
                   static_cast<double>(stations_.size() - 1);
}

sim::Time WirelessMedium::service_time(const net::PacketPtr& p) const {
  return sim::transmission_time(p->size_bytes(),
                                cfg_.phy.effective_rate_bps()) *
         contention_factor();
}

void WirelessMedium::transmit(net::Interface* from, net::IpAddress next_hop,
                              net::PacketPtr p) {
  MCS_ASSERT(from != nullptr && p != nullptr,
             "wireless transmit needs a source interface and a packet");
  stats_.counter("tx_packets").add();
  if (circuit_mode()) {
    // The dedicated channel belongs to the mobile endpoint of the frame.
    net::Interface* station_iface =
        from == ap_ ? find_destination(next_hop) : from;
    Station* st = station_iface ? station_state(station_iface) : nullptr;
    if (st == nullptr || !st->in_call) {
      stats_.counter("drop_no_call").add();
      obs::metric_add(m_drops_);
      return;
    }
    if (st->queued_bytes + p->size_bytes() > cfg_.queue_limit_bytes) {
      stats_.counter("drop_queue_overflow").add();
      obs::metric_add(m_drops_);
      return;
    }
    st->queue.push_back(PendingTx{from, next_hop, std::move(p)});
    st->queued_bytes += st->queue.back().packet->size_bytes();
    obs::metric_adjust(
        m_queued_bytes_,
        static_cast<double>(st->queue.back().packet->size_bytes()));
    if (!st->busy) start_circuit_service(station_iface);
    return;
  }

  if (shared_queued_bytes_ + p->size_bytes() > cfg_.queue_limit_bytes) {
    stats_.counter("drop_queue_overflow").add();
    obs::metric_add(m_drops_);
    return;
  }
  shared_queue_.push_back(PendingTx{from, next_hop, std::move(p)});
  shared_queued_bytes_ += shared_queue_.back().packet->size_bytes();
  obs::metric_adjust(
      m_queued_bytes_,
      static_cast<double>(shared_queue_.back().packet->size_bytes()));
  if (!shared_busy_) start_shared_service();
}

void WirelessMedium::start_shared_service() {
  if (shared_queue_.empty()) {
    shared_busy_ = false;
    return;
  }
  shared_busy_ = true;
  PendingTx tx = std::move(shared_queue_.front());
  shared_queue_.pop_front();
  shared_queued_bytes_ -= tx.packet->size_bytes();
  obs::metric_adjust(m_queued_bytes_,
                     -static_cast<double>(tx.packet->size_bytes()));
  // Compute before the capture: function-argument evaluation order is
  // unspecified, and the move-capture would empty tx first.
  const sim::Time service = service_time(tx.packet);
  // Air time (serialization under contention + propagation) attributed to
  // the stamped context as "wireless" component time.
  const obs::TraceContext air = obs::begin_child(
      obs::TraceContext{tx.packet->trace_id, tx.packet->trace_span},
      obs::Component::kWireless, "air.tx", sim_.now());
  sim_.after(service, [this, tx = std::move(tx), air] {
    deliver(tx.from, tx.next_hop, tx.packet, air);
    start_shared_service();
  });
}

void WirelessMedium::start_circuit_service(net::Interface* station_iface) {
  Station* st = station_state(station_iface);
  if (st == nullptr || st->queue.empty()) {
    if (st != nullptr) st->busy = false;
    return;
  }
  st->busy = true;
  PendingTx tx = std::move(st->queue.front());
  st->queue.pop_front();
  st->queued_bytes -= tx.packet->size_bytes();
  obs::metric_adjust(m_queued_bytes_,
                     -static_cast<double>(tx.packet->size_bytes()));
  // Dedicated channel: full effective rate, no contention factor.
  const sim::Time service = sim::transmission_time(
      tx.packet->size_bytes(), cfg_.phy.effective_rate_bps());
  const obs::TraceContext air = obs::begin_child(
      obs::TraceContext{tx.packet->trace_id, tx.packet->trace_span},
      obs::Component::kWireless, "air.tx", sim_.now());
  sim_.after(service, [this, station_iface, tx = std::move(tx), air] {
    deliver(tx.from, tx.next_hop, tx.packet, air);
    start_circuit_service(station_iface);
  });
}

void WirelessMedium::deliver(net::Interface* from, net::IpAddress next_hop,
                             const net::PacketPtr& p, obs::TraceContext air) {
  net::Interface* to = find_destination(next_hop);
  if (to == nullptr || !to->up() || !from->up()) {
    stats_.counter("drop_not_attached").add();
    obs::metric_add(m_drops_);
    obs::end_span(air, sim_.now());
    return;
  }
  const double dist = position_of(from).distance_to(position_of(to));
  if (dist > cfg_.phy.range_m) {
    stats_.counter("drop_out_of_range").add();
    obs::metric_add(m_drops_);
    obs::end_span(air, sim_.now());
    return;
  }
  // Loss model: residual PHY loss, plus a steep ramp near the cell edge,
  // plus Gilbert-Elliott burst state of the mobile endpoint.
  double p_loss = cfg_.phy.base_loss_rate;
  const double edge_start = 0.85 * cfg_.phy.range_m;
  if (dist > edge_start) {
    p_loss += 0.4 * (dist - edge_start) / (cfg_.phy.range_m - edge_start);
  }
  Station* st = station_state(to != ap_ ? to : from);
  if (st != nullptr) {
    // Evolve the burst state once per frame.
    if (st->ge_bad) {
      if (rng_.bernoulli(cfg_.p_bad_to_good)) st->ge_bad = false;
    } else if (rng_.bernoulli(cfg_.p_good_to_bad)) {
      st->ge_bad = true;
    }
    if (st->ge_bad) p_loss += cfg_.burst_loss;
  }
  if (rng_.bernoulli(std::min(p_loss, 1.0))) {
    stats_.counter("drop_loss").add();
    obs::metric_add(m_drops_);
    obs::end_span(air, sim_.now());
    return;
  }
  stats_.counter("delivered_packets").add();
  stats_.counter("delivered_bytes").add(p->size_bytes());
  obs::metric_add(m_frames_);
  obs::metric_add(m_tx_bytes_, p->size_bytes());
  sim_.after(kAirPropagation, [this, to, p, air] {
    obs::end_span(air, sim_.now());
    obs::ActiveScope scope{obs::TraceContext{p->trace_id, p->trace_span}};
    to->node()->receive(p, to);
  });
}

net::Interface* WirelessMedium::find_destination(net::IpAddress addr) const {
  if (ap_ != nullptr && ap_->addr() == addr) return ap_;
  for (const auto& [iface, st] : stations_) {
    if (iface->addr() == addr) return const_cast<net::Interface*>(iface);
  }
  return nullptr;
}

Position WirelessMedium::position_of(const net::Interface* iface) const {
  if (iface == ap_) return ap_position_;
  auto it = stations_.find(iface);
  if (it != stations_.end() && it->second.mobility != nullptr) {
    return it->second.mobility->position();
  }
  return ap_position_;
}

WirelessMedium::Station* WirelessMedium::station_state(
    const net::Interface* iface) {
  auto it = stations_.find(iface);
  return it == stations_.end() ? nullptr : &it->second;
}

double WirelessMedium::rate_bps(const net::Interface* /*from*/) const {
  return cfg_.phy.effective_rate_bps();
}

std::vector<net::Channel::Edge> WirelessMedium::edges() const {
  std::vector<Edge> out;
  if (ap_ == nullptr) return out;
  const double cost =
      kAirPropagation.to_seconds() + 8.0 * 1024.0 / cfg_.phy.effective_rate_bps();
  for (const auto& [iface, st] : stations_) {
    // Only in-range stations are routable.
    const double dist = ap_position_.distance_to(position_of(iface));
    if (dist > cfg_.phy.range_m) continue;
    out.push_back(Edge{ap_, const_cast<net::Interface*>(iface), cost});
  }
  return out;
}

}  // namespace mcs::wireless
