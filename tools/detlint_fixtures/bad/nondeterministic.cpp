// Fixture: every construct below must be reported by detlint. The ctest
// `detlint_selftest_catches_violations` runs the lint over this directory
// with WILL_FAIL, so a lint regression that stops catching any class of
// violation shows up as a test failure.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

struct Scheduler {
  void after(int delay_ms, void (*fn)()) { (void)delay_ms, (void)fn; }
};

struct UninitializedMembers {
  int count;          // uninit-pod
  double weight;      // uninit-pod
  bool ready = true;  // fine: initialized
};

inline int banned_randomness() {
  std::random_device rd;       // rng
  std::mt19937_64 engine{1};   // rng
  return rand() + static_cast<int>(rd() + engine());  // rng
}

inline long banned_wall_clock() {
  auto t0 = std::chrono::steady_clock::now();  // wallclock
  (void)t0;
  return time(nullptr) + clock();  // wallclock x2
}

inline void banned_unordered_scheduling(Scheduler& sched) {
  std::unordered_map<int, int> sessions;
  for (auto& [id, state] : sessions) {  // unordered-sched
    (void)id, (void)state;
    sched.after(10, nullptr);
  }
}
