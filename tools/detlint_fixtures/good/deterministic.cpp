// Fixture: idiomatic deterministic simulation code that detlint must accept,
// including the documented suppression escape hatch. Run by the ctest
// `detlint_selftest_passes_clean_code`.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Scheduler {
  void after(int delay_ms, void (*fn)()) { (void)delay_ms, (void)fn; }
};

struct InitializedMembers {
  int count = 0;
  double weight = 1.0;
  std::uint64_t seq = 0;    // "rand" inside a comment is not a finding
  std::string name;         // non-scalar members need no initializer
  std::vector<int> values;  // "time(nullptr)" in a string is fine too
};

inline std::string not_actually_random() {
  // Words containing the banned identifiers must not match: operand, strand.
  std::string operand = "operand rand() time(NULL)";
  return operand;
}

// Lookups (not iteration) on unordered containers are deterministic.
inline int unordered_lookup_is_fine(
    const std::unordered_map<int, int>& sessions) {
  auto it = sessions.find(7);
  return it == sessions.end() ? 0 : it->second;
}

// Iterating an ordered container while scheduling is deterministic.
inline void ordered_iteration_schedules(Scheduler& sched,
                                        const std::map<int, int>& timers) {
  for (const auto& [id, deadline] : timers) {
    (void)id, (void)deadline;
    sched.after(1, nullptr);
  }
}

// The suppression comment downgrades a deliberate, order-insensitive use.
inline int suppressed_unordered_total(Scheduler& sched,
                                      std::unordered_map<int, int>& acc) {
  int total = 0;
  for (auto& [k, v] : acc) {  // detlint: allow(unordered-sched)
    total += v;
    sched.after(total, nullptr);
  }
  return total;
}
