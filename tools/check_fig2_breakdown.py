#!/usr/bin/env python3
"""check_fig2_breakdown: gate on the measured Figure 2 latency breakdown.

Validates a bench/fig2_mc_system trace-mode JSON (the committed
BENCH_fig2_breakdown.json, or a fresh CI run) against the paper's claim
structure: the traced workload must attribute *nonzero* self time to every
one of the six Figure 2 components — application programs, mobile station,
mobile middleware, wireless network, wired network, host computers. A zero
bucket means a component stopped opening spans (instrumentation rot), which
is exactly the failure this gate exists to catch; it is not a performance
gate, so no tolerances.

Checks:
  * schema: bench == "fig2_breakdown", scenarios + aggregate present;
  * every aggregate component bucket > 0 with a > --min-share share;
  * every scenario covers both middlewares and both radios across the set,
    each with traces > 0 and total_ms > 0.

Usage:
  check_fig2_breakdown.py BENCH_fig2_breakdown.json [--min-share 1e-6]

Exit status: 0 ok, 1 gate failure, 2 usage/schema error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from bench_gate import load_bench_json

COMPONENTS = ("application", "station", "middleware", "wireless", "wired",
              "host")


def fail(msg: str, code: int = 1) -> int:
    print(f"check_fig2_breakdown: FAIL: {msg}", file=sys.stderr)
    return code


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("breakdown", type=Path)
    parser.add_argument("--min-share", type=float, default=1e-6,
                        help="minimum aggregate share per component")
    args = parser.parse_args()

    data = load_bench_json(args.breakdown, "check_fig2_breakdown",
                           bench="fig2_breakdown")

    scenarios = data.get("scenarios", [])
    aggregate = data.get("aggregate", {})
    if not scenarios or not aggregate:
        return fail("missing scenarios or aggregate section", 2)

    # Scenario coverage: both middlewares, both radio families, all live.
    systems = {s.get("system") for s in scenarios}
    radios = {s.get("radio") for s in scenarios}
    if len(systems) < 2:
        return fail(f"expected both middlewares, got {sorted(systems)}")
    if len(radios) < 2:
        return fail(f"expected multiple radios, got {sorted(radios)}")
    for s in scenarios:
        label = f"{s.get('system')}/{s.get('radio')}"
        if s.get("traces", 0) <= 0:
            return fail(f"scenario {label} sampled no traces")
        if s.get("total_ms", 0.0) <= 0.0:
            return fail(f"scenario {label} measured no root latency")

    # The core claim: every paper component accrued measured self time.
    comps = aggregate.get("components_ms", {})
    shares = aggregate.get("share", {})
    for name in COMPONENTS:
        ms = comps.get(name, 0.0)
        share = shares.get(name, 0.0)
        if ms <= 0.0:
            return fail(f"component '{name}' has zero measured self time")
        if share < args.min_share:
            return fail(f"component '{name}' share {share:g} below "
                        f"{args.min_share:g}")

    total = sum(comps[name] for name in COMPONENTS)
    print(f"check_fig2_breakdown: OK — {len(scenarios)} scenario(s), "
          f"{aggregate.get('traces', 0)} trace(s), "
          f"{total:.1f} ms attributed across all six components")
    return 0


if __name__ == "__main__":
    sys.exit(main())
