#!/usr/bin/env python3
"""check_kernel_bench: gate CI on event-kernel throughput.

Compares a fresh bench/kernel run (its JSON output) against the committed
baseline BENCH_kernel.json and fails when either:

  * any workload's ops_per_sec regressed more than --tolerance (default 20%)
    below the baseline — catches "someone made schedule()/cancel() slower";
  * any workload's speedup over the frozen legacy kernel fell below
    --min-speedup (default 1.0) — the speedup ratio is measured on a single
    machine within one process, so unlike raw ops/sec it is robust to the
    runner being a different (or merely busy) box. A collapse to <1x means
    the rewrite's advantage is gone even if absolute numbers look fine.

The absolute comparison is skipped (with a notice) when the fresh run is a
smoke run or used a different event count than the baseline: ops/sec at
different scales are not comparable, but the speedup check still applies.

Usage:
  check_kernel_bench.py --baseline BENCH_kernel.json --current fresh.json \
      [--tolerance 0.20] [--min-speedup 1.0]

Exit status: 0 ok, 1 regression, 2 usage/schema error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from bench_gate import load_bench_json, report


def load(path: Path) -> dict:
    return load_bench_json(path, "check_kernel_bench", bench="kernel",
                           required=("workloads",))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--current", required=True, type=Path)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional ops/sec drop (default 0.20)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum new/legacy speedup per workload")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    comparable = (not current.get("smoke", False)
                  and current.get("total_events") == baseline.get("total_events"))
    if not comparable:
        print("check_kernel_bench: scales differ (smoke run?); "
              "skipping absolute ops/sec comparison")

    failures = []
    for name, base in baseline["workloads"].items():
        cur = current["workloads"].get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        if comparable:
            floor = base["ops_per_sec"] * (1.0 - args.tolerance)
            if cur["ops_per_sec"] < floor:
                failures.append(
                    f"{name}: ops/sec regressed {base['ops_per_sec']:.0f} -> "
                    f"{cur['ops_per_sec']:.0f} "
                    f"(floor {floor:.0f} at {args.tolerance:.0%} tolerance)")
        if cur["speedup"] < args.min_speedup:
            failures.append(
                f"{name}: speedup over legacy kernel is {cur['speedup']:.2f}x, "
                f"below the {args.min_speedup:.2f}x floor")
        print(f"{name}: {cur['ops_per_sec']:.0f} ops/sec "
              f"(baseline {base['ops_per_sec']:.0f}), "
              f"speedup {cur['speedup']:.2f}x")

    return report("check_kernel_bench", failures)


if __name__ == "__main__":
    sys.exit(main())
