// known-clean counterpart for hotpath-alloc and shard-escape: a hot-path
// entry that works in preallocated storage, plus shared-state shapes the
// checks must accept (const, thread_local, atomic, unreachable-from-entry).
#include <atomic>
#include <cstddef>

namespace {
const int kTableSize = 16;  // const global: immutable, shard-safe
thread_local int t_scratch = 0;  // per-thread, shard-safe
std::atomic<int> g_ticks{0};  // synchronized; determinism is another family
int g_cold_config = 0;  // mutable but only touched off the hot path
}  // namespace

void configure(int v) {  // not an entry point; g_cold_config never escapes
  g_cold_config = v;
}

int html_to_wml(char* buf, int len) {
  t_scratch = len;
  g_ticks.fetch_add(1, std::memory_order_relaxed);
  int sum = 0;
  for (int i = 0; i < len && i < kTableSize; ++i) {
    sum += buf[i];  // in-place transform, no allocation
  }
  return sum;
}
