// known-clean counterpart for hotpath-alloc and shard-escape: a hot-path
// entry that works in preallocated storage through a project-defined
// zero-copy writer (the sim/arena.h mold: an alloc/growth-named call that
// resolves to project code charges the callee's body, not the call site),
// plus shared-state shapes the checks must accept (const, thread_local,
// atomic, unreachable-from-entry).
#include <atomic>
#include <cstddef>

namespace {
const int kTableSize = 16;  // const global: immutable, shard-safe
thread_local int t_scratch = 0;  // per-thread, shard-safe
std::atomic<int> g_ticks{0};  // synchronized; determinism is another family
int g_cold_config = 0;  // mutable but only touched off the hot path
}  // namespace

void configure(int v) {  // not an entry point; g_cold_config never escapes
  g_cold_config = v;
}

namespace fixture_arena {

// Writes into caller-provided storage. The growth-named method is project
// code whose own body allocates nothing, so neither the call site below nor
// this callee may trip hotpath-alloc.
struct SliceWriter {
  char* dst = nullptr;
  std::size_t len = 0;
  void append(const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) dst[len++] = s[i];
  }
};

}  // namespace fixture_arena

int translate_html(char* buf, int len) {
  t_scratch = len;
  g_ticks.fetch_add(1, std::memory_order_relaxed);
  fixture_arena::SliceWriter w{buf, 0};
  w.append("ok", 2);  // resolves to SliceWriter::append: not a call-site hit
  int sum = 0;
  for (int i = 0; i < len && i < kTableSize; ++i) {
    sum += buf[i];  // in-place transform, no allocation
  }
  return sum;
}
