// Clean fixture for arena-escape: MCS_OWNS_ARENA on a class declares that
// its view members point into an arena the class itself owns, so the
// members cannot outlive their storage.
#include <string>

namespace fixture_arena_owns {

struct MCS_OWNS_ARENA RequestFrame {
  Slice path_ = {};

  void set_path(Arena& arena, const std::string& p) {
    path_ = arena.copy(p);  // fine: the frame owns the arena it views into
  }
};

}  // namespace fixture_arena_owns
