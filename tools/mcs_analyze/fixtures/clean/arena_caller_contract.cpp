// Clean fixture for arena-escape: the caller's-arena contract. A function
// handed an Arena& that returns memory allocated from it — without opening
// a scope, leasing, or resetting — transfers nothing: the caller owns the
// arena and decides how long the bytes live.
#include <string>

namespace fixture_arena_caller {

Slice lower_copy(Arena& arena, const std::string& s) {
  return arena.copy(s);  // fine: caller's arena, caller's lifetime
}

Slice relabel(Arena& arena, const std::string& s) {
  Slice t = lower_copy(arena, s);
  return t;  // fine: still the caller's arena, one summary hop deep
}

}  // namespace fixture_arena_caller
