// known-clean counterpart for lock-order: two mutexes always taken in the
// same order (including through a callee), and a wait holding one lock.

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};

class CondVar {
 public:
  void wait(MutexLock& l);
};

class Ledger {
 public:
  void credit();
  void debit();
  void wait_for_credit();

 private:
  void apply();

  Mutex first_;
  Mutex second_;
  CondVar cv_;
  int total_ = 0;
};

void Ledger::credit() {
  MutexLock lf{first_};
  MutexLock ls{second_};  // consistent first_ -> second_ order
  total_ += 1;
}

void Ledger::debit() {
  MutexLock lf{first_};
  apply();  // same order through the call graph
}

void Ledger::apply() {
  MutexLock ls{second_};
  total_ -= 1;
}

void Ledger::wait_for_credit() {
  MutexLock lf{first_};
  cv_.wait(lf);  // only one lock held: fine
}
