#pragma once

// Fixture: the wallclock exemption is per-file, keyed on the path
// obs/telemetry_clock.h — the telemetry overhead stopwatch is the sanctioned
// host-clock reader (alongside obs/trace_clock.h). Every steady_clock read
// below must pass clean. The companion bad fixture
// (bad/src/obs/unexempt_clock.cpp) proves the exemption does NOT extend to
// the rest of the obs/ directory.
#include <chrono>
#include <cstdint>

namespace fixture::obs {

class OverheadStopwatch {
 public:
  void start() { t0_ = std::chrono::steady_clock::now(); }  // exempt here
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0_)  // exempt here
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace fixture::obs
