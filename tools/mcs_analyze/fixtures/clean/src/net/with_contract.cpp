// Fixture: a component-layer public mutating method WITH contract coverage,
// plus a suppressed legacy-style finding. Zero findings expected.
#include <string>
#include <unordered_set>
#include <vector>

#define MCS_ASSERT(cond, msg) ((void)(cond))

namespace fixture {

struct Scheduler {
  void after(int, int) {}
};

class RouteTable {
 public:
  void add_route(const std::string& prefix, int interface_index) {
    MCS_ASSERT(interface_index >= 0, "interface index must be valid");
    prefixes_.push_back(prefix);
    interfaces_.push_back(interface_index);
  }

  // Suppressions work, including the legacy detlint rule spelling.
  void reschedule_all(Scheduler& sched) {
    for (int id : pending_) {  // detlint: allow(unordered-sched)
      sched.after(id, 0);
    }
  }

 private:
  std::vector<std::string> prefixes_;
  std::vector<int> interfaces_;
  std::unordered_set<int> pending_;
};

}  // namespace fixture
