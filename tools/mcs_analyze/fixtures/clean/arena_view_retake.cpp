// Clean fixture for arena-escape rule (c): views consumed before the next
// append are fine, and a view re-taken after an invalidating append is
// healed.
#include <string>

namespace fixture_arena_retake {

std::size_t view_then_append(std::string& out, const std::string& a) {
  BufWriter w{out};
  w.put(a);
  Slice head = w.view();
  std::size_t n = head.size();  // fine: consumed before the next append
  w.put(a);
  head = w.view();  // re-taken after the append: healed
  return n + head.size();
}

}  // namespace fixture_arena_retake
