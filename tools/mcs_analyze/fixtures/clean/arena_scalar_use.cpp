// Clean fixture for arena-escape: scalars computed from a view (size(),
// empty()) carry no pointer into the arena, so returning one from a
// recycling function is fine.
#include <string>

namespace fixture_arena_scalar {

std::size_t measured(Arena& arena, const std::string& s) {
  ArenaScope scope{arena};
  Slice t = arena.copy(s);
  return t.size();  // fine: the length survives the reset, the bytes go
}

}  // namespace fixture_arena_scalar
