// Clean fixture for arena-escape: MCS_ARENA_STABLE silences every rule it
// names — on a field, on a namespace-scope global, and on a function that
// recycles its arena but whose returned view is vetted (e.g. the arena is
// boot-scoped and never reset in practice).
#include <string>

namespace fixture_arena_stable {

struct InternTable {
  Slice last_interned_ MCS_ARENA_STABLE = {};

  void intern(Arena& arena, const std::string& s) {
    last_interned_ = arena.copy(s);  // vetted: field annotated stable
  }
};

Slice g_boot_banner MCS_ARENA_STABLE = {};

void publish_banner(Arena& arena, const std::string& s) {
  g_boot_banner = arena.copy(s);  // vetted: boot-time arena never resets
}

Slice pinned_slice(Arena& arena, const std::string& s) MCS_ARENA_STABLE {
  ArenaScope scope{arena};
  return arena.copy(s);  // vetted: the function is annotated stable
}

}  // namespace fixture_arena_stable
