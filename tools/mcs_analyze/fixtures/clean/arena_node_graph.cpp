// Clean fixture for arena-escape rule (a): stores into arena-resident
// nodes are not escapes — the target object dies with the same arena the
// stored view points into (the translate.cpp VNode graph pattern).
#include <string>

namespace fixture_arena_nodes {

struct Node {
  Slice name = {};
  Node* next = nullptr;
};

Node* push_node(Arena& arena, const std::string& label, Node* head) {
  Node* n = static_cast<Node*>(arena.allocate(sizeof(Node), alignof(Node)));
  n->name = arena.copy(label);  // fine: `n` lives in the same arena
  n->next = head;
  return n;  // fine: caller's arena, no recycle here
}

}  // namespace fixture_arena_nodes
