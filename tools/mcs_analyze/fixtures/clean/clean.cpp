// Fixture: deterministic, thread-correct code exercising the patterns each
// check looks *near* without committing the offense. mcs_analyze must report
// zero findings for this file (the selftest asserts it).
//
// Not real build targets — the fixture only has to parse; MCS_* macros are
// stubbed so the file is self-contained.
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#define MCS_ASSERT(cond, msg) ((void)(cond))
#define MCS_GUARDED_BY(x)

namespace fixture {

struct JsonWriter {
  void key(const std::string&) {}
  void value(double) {}
};

// Mentioning std::chrono::system_clock::now(), rand(), or getenv("X") in a
// comment (or the string below) is not a finding: the lexer sees token
// boundaries, not raw text.
const char* docs() { return "never call time(nullptr) or rand() here"; }

class Registry {
 public:
  // Unordered iteration is fine when nothing order-sensitive happens in the
  // body: counting does not leak hash order.
  int size_nonempty() {
    int n = 0;
    for (const auto& kv : table_) {
      if (kv.second != 0.0) ++n;
    }
    return n;
  }

  // Order-sensitive output from an *ordered* container: deterministic.
  void dump(JsonWriter& w) {
    std::map<std::string, double> sorted{table_.begin(), table_.end()};
    for (const auto& kv : sorted) {
      w.key(kv.first);
      w.value(kv.second);
    }
  }

  // Integer accumulation commutes exactly; hash order cannot show through.
  long count_total() {
    long total = 0;
    for (const auto& kv : hits_) {
      total += kv.second;
    }
    return total;
  }

 private:
  std::unordered_map<std::string, double> table_;
  std::unordered_map<std::string, long> hits_;
};

struct Mutex {
  void lock() {}
  void unlock() {}
};

class Pool {
 public:
  Pool() {
    MCS_ASSERT(true, "fixture pool invariant");
    for (int i = 0; i < 2; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

 private:
  void worker_loop() {
    jobs_done_.fetch_add(1);  // atomic: fine from a worker
    pending_ = pending_ - 1;  // MCS_GUARDED_BY-annotated: fine
  }

  std::vector<std::thread> workers_;
  std::atomic<int> jobs_done_{0};
  Mutex mu_;
  int pending_ MCS_GUARDED_BY(mu_) = 0;
};

struct PacketHeader {
  int sequence = 0;       // initialized: not a finding
  double sent_at_ms = 0;  // initialized: not a finding
};

}  // namespace fixture
