// Clean fixture for arena-escape: deep copies kill taint. Assigning an
// arena-backed view into owned storage (std::string, cat) detaches the
// bytes from the arena, so returning or storing the copy is fine even when
// the function recycles the arena.
#include <string>

namespace fixture_arena_copy {

std::string owned_copy(Arena& arena, const std::string& s) {
  ArenaScope scope{arena};
  Slice t = arena.copy(s);
  std::string owned = std::string(t.data(), t.size());
  return owned;  // fine: `owned` holds its own bytes
}

std::string owned_cat(Arena& arena, const std::string& s) {
  ArenaScope scope{arena};
  Slice t = arena.copy(s);
  return cat("title=", t);  // fine: cat materializes an owning string
}

}  // namespace fixture_arena_copy
