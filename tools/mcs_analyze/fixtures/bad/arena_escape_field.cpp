// known-bad fixture for arena-escape rule (a): arena-backed views stored
// into fields whose owner outlives the arena — once through a bare member
// assignment inside a method, once through a receiver chain from a free
// function. Neither target is annotated MCS_ARENA_STABLE / MCS_OWNS_ARENA.
#include <string>

namespace fixture_arena_field {

struct SessionCache {
  Slice last_title_ = {};
  const char* last_body_ = nullptr;

  void remember(Arena& arena, const std::string& title) {
    last_title_ = arena.copy(title);  // bad: cache outlives the arena
  }
};

void stash_body(SessionCache* cache, Arena& arena, const std::string& body) {
  cache->last_body_ = arena.alloc_chars(body.size());  // bad: chain store
}

}  // namespace fixture_arena_field
