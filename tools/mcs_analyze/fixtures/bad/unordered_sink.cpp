// Fixture: iterating an unordered container while writing JSON (directly
// and through a helper one call deep) — hash order becomes output order.
// The `unordered-sink` check must flag both loops.
#include <string>
#include <unordered_map>

namespace fixture {

struct JsonWriter {
  void key(const std::string&) {}
  void value(int) {}
};

class Registry {
 public:
  void dump(JsonWriter& w) {
    for (const auto& kv : table_) {  // finding: unordered-sink (direct)
      w.key(kv.first);
      w.value(kv.second);
    }
  }

  void dump_indirect(JsonWriter& w) {
    for (const auto& kv : table_) {  // finding: unordered-sink (via helper)
      write_one(w, kv.first, kv.second);
    }
  }

 private:
  void write_one(JsonWriter& w, const std::string& k, int v) {
    w.key(k);
    w.value(v);
  }

  std::unordered_map<std::string, int> table_;
};

}  // namespace fixture
