// Fixture: a worker thread touches plain fields of its owning object. Every
// field reached from a thread-entry lambda must be MCS_GUARDED_BY-annotated,
// atomic, thread_local, or const; `jobs_done_` and `last_label_` are none of
// those. The `unguarded-field` check must flag both (including the one only
// reached through worker_loop, one call deep).
#include <string>
#include <thread>
#include <vector>

namespace fixture {

class Pool {
 public:
  Pool() {
    for (int i = 0; i < 4; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void spin_one_inline() {
    std::thread t{[this] {
      jobs_done_ = jobs_done_ + 1;  // finding: unguarded-field (direct)
    }};
    t.join();
  }

 private:
  void worker_loop() {
    jobs_done_ = jobs_done_ + 1;  // finding: unguarded-field (via call)
    last_label_ = "worked";       // finding: unguarded-field
  }

  std::vector<std::thread> workers_;
  int jobs_done_ = 0;
  std::string last_label_;
};

}  // namespace fixture
