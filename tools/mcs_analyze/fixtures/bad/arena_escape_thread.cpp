// known-bad fixture for arena-escape rule (d): thread-entry lambdas
// capturing thread-confined arena state — the arena handle itself by
// reference, and an arena-backed view by value. Arena memory never crosses
// threads (ThreadConfinementChecker aborts the same at runtime).
#include <string>
#include <thread>

namespace fixture_arena_thread {

void consume(Slice s);

void handoff(Arena& arena, const std::string& s) {
  Slice t = arena.copy(s);
  std::thread producer{[&arena] {
    arena.alloc_chars(8);  // bad: arena is confined to the spawning thread
  }};
  std::thread reader{[t] {
    consume(t);  // bad: t points into the spawning thread's arena
  }};
  producer.join();
  reader.join();
}

}  // namespace fixture_arena_thread
