// Fixture: a public mutating method with real logic and no MCS_ASSERT /
// MCS_INVARIANT coverage. Lives under a src/net/ path segment because the
// `missing-contract` check only applies to the component layers.
#include <string>
#include <vector>

namespace fixture {

class RouteTable {
 public:
  void add_route(const std::string& prefix, int interface_index) {
    prefixes_.push_back(prefix);            // finding: missing-contract
    interfaces_.push_back(interface_index);
  }

  int lookups() const { return 0; }  // const: not checked

 private:
  std::vector<std::string> prefixes_;
  std::vector<int> interfaces_;
};

}  // namespace fixture
