// Fixture: the wallclock exemption whitelists exactly obs/trace_clock.h and
// obs/telemetry_clock.h — a host-clock read in any OTHER file under obs/
// (say, a profiler "optimisation" that swaps sim time for host time) must
// still be flagged, or wallclock reads could hide behind the directory name.
#include <chrono>

namespace fixture::obs {

long sneaky_obs_clock() {
  const auto t = std::chrono::steady_clock::now();  // finding: wallclock
  return t.time_since_epoch().count();
}

}  // namespace fixture::obs
