// Fixture: environment reads make runs depend on host configuration; the
// `getenv` check must flag them.
#include <cstdlib>

namespace fixture {

int bad_env_knob() {
  const char* level = std::getenv("FIXTURE_LEVEL");  // finding: getenv
  if (level == nullptr) return 0;
  return std::atoi(level);
}

}  // namespace fixture
