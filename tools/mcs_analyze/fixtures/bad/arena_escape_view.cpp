// known-bad fixture for arena-escape rule (c), BufWriter flavor: a view()
// slice held across a later append to the same writer, which may grow the
// underlying string and dangle every previously taken view.
#include <string>

namespace fixture_arena_view {

void consume(Slice s);

void stale_view(std::string& out, const std::string& a,
                const std::string& b) {
  BufWriter w{out};
  w.put(a);
  Slice head = w.view();
  w.put(b);       // may reallocate `out`: `head` now dangles
  consume(head);  // bad: stale view used after the invalidating append
}

}  // namespace fixture_arena_view
