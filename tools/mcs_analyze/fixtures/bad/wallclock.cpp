// Fixture: every statement here reads a wall clock; the `wallclock` check
// must flag each one. (Comments mentioning system_clock or time() must NOT
// be flagged — that was detlint's false-positive class.)
#include <chrono>
#include <ctime>

namespace fixture {

long bad_now_chrono() {
  const auto t = std::chrono::system_clock::now();  // finding: wallclock
  const auto s = std::chrono::steady_clock::now();  // finding: wallclock
  return t.time_since_epoch().count() + s.time_since_epoch().count();
}

long bad_now_libc() {
  std::time_t raw = 0;
  std::time(&raw);             // finding: wallclock
  long sum = static_cast<long>(std::time(nullptr));  // finding: wallclock
  struct timespec ts;
  clock_gettime(0, &ts);       // finding: wallclock
  return sum + raw + ts.tv_sec;
}

const char* not_findings() {
  // "std::chrono::system_clock::now()" inside this string is not code:
  return "call time(nullptr) or system_clock::now() for wall time";
}

}  // namespace fixture
