// known-bad fixture for hotpath-alloc: heap allocation, std::string
// construction, and container growth reachable from the translate_html
// entry point, including one hop down the call graph.
#include <string>
#include <vector>

namespace fixture_hotpath {

std::string build_payload(int n) {
  std::string out;  // std::string construction on the hot path
  std::vector<int> parts;
  for (int i = 0; i < n; ++i) {
    parts.push_back(i);  // container growth on the hot path
    out += "x";
  }
  return out;
}

int deep_helper(int n) {
  int* scratch = new int[n];  // operator new on the hot path
  int s = scratch[0];
  delete[] scratch;
  return s;
}

}  // namespace fixture_hotpath

std::string translate_html(const std::string& doc) {
  std::string head = fixture_hotpath::build_payload(3);
  (void)fixture_hotpath::deep_helper(2);
  return head + std::to_string(doc.size());  // allocating call
}
