// Fixture: handing a Simulator (or Packet) to another thread. Simulators
// and Packets are cell-thread confined by design; capturing one into a
// thread-entry lambda is an escape. The `sim-escape` check must flag it.
#include <functional>
#include <thread>

namespace fixture {

struct Simulator {
  void step() {}
};

struct WorkQueue {
  void submit(std::function<void()> job) { job(); }
};

void bad_escape(WorkQueue& pool) {
  Simulator* sim = nullptr;
  pool.submit([sim] { sim->step(); });  // finding: sim-escape
}

void bad_thread_escape() {
  Simulator sim;
  Simulator& ref = sim;
  std::thread t{[&ref] { ref.step(); }};  // finding: sim-escape
  t.join();
}

}  // namespace fixture
