// known-bad fixture for lock-order: an AB/BA acquisition cycle (one leg
// through a callee), a same-scope re-acquisition, and a cond-var wait
// while holding a second lock. Shapes mirror sim/threading.h wrappers.

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};

class CondVar {
 public:
  void wait(MutexLock& l);
};

class Accounts {
 public:
  void a_then_b();
  void b_then_a();
  void reacquire();
  void wait_holding_two();
  void outer();

 private:
  void inner();

  Mutex a_;
  Mutex b_;
  CondVar cv_;
  int balance_ = 0;
};

void Accounts::a_then_b() {
  MutexLock la{a_};
  MutexLock lb{b_};  // a_ -> b_
  balance_ += 1;
}

void Accounts::b_then_a() {
  MutexLock lb{b_};
  MutexLock la{a_};  // b_ -> a_: closes the cycle
  balance_ -= 1;
}

void Accounts::reacquire() {
  MutexLock l1{a_};
  MutexLock l2{a_};  // same non-recursive mutex: self-deadlock
}

void Accounts::wait_holding_two() {
  MutexLock la{a_};
  MutexLock lb{b_};
  cv_.wait(lb);  // waker must take a_ too
}

void Accounts::outer() {
  MutexLock la{a_};
  inner();  // a_ -> b_ through the call graph
}

void Accounts::inner() {
  MutexLock lb{b_};
  balance_ += 2;
}
