// known-bad fixture for arena-escape rule (c), reset/rewind flavor: views
// used after the arena operation that recycled their storage. The first
// case also exercises the interprocedural summary — the taint arrives
// through helper_copy(), not a direct Arena::copy call.
#include <string>

namespace fixture_arena_reset {

Slice helper_copy(Arena& arena, const std::string& s) {
  return arena.copy(s);  // fine here: the caller's arena owns the bytes
}

std::size_t use_after_reset(Arena& arena, const std::string& s) {
  Slice t = helper_copy(arena, s);
  arena.reset();
  return t.size();  // bad: t's bytes were recycled by the reset
}

std::size_t use_after_rewind(Arena& arena, const std::string& s) {
  auto m = arena.mark();
  Slice t = arena.copy(s);
  arena.rewind(m);
  return t.size();  // bad: the rewind released t's storage
}

}  // namespace fixture_arena_reset
