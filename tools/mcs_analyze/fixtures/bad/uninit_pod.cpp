// Fixture: scalar members without initializers — replay would read stack
// or heap garbage. The `uninit-pod` check must flag each one.

namespace fixture {

struct PacketHeader {
  int sequence;        // finding: uninit-pod
  double sent_at_ms;   // finding: uninit-pod
  bool retransmitted;  // finding: uninit-pod
  int initialized_ok = 0;  // not a finding
};

}  // namespace fixture
