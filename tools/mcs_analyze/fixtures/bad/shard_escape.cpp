// known-bad fixture for shard-escape: a mutable global, a mutable static
// data member, and a function-local static all reachable from a per-packet
// entry point (Node::receive). Every shard kernel runs this code, so each
// is one object raced on by all kernels.

int g_shard_hits = 0;  // mutable global touched from the hot path

class Node {
 public:
  void receive(int pkt);

 private:
  void bump();
};

struct Telemetry {
  static int counter;  // mutable static member touched from the hot path
};
int Telemetry::counter = 0;

void Node::bump() {
  static int calls = 0;  // function-local static on the hot path
  calls += 1;
  g_shard_hits += 1;
  Telemetry::counter += 1;
}

void Node::receive(int pkt) {
  bump();
  (void)pkt;
}
