// known-bad fixture for arena-escape rule (b): functions that return
// arena-backed values while also ending the arena's lifetime — via an
// ArenaScope pop, a pool-lease return, and an explicit reset(). In every
// case the storage is recycled before the caller can read it.
#include <string>

namespace fixture_arena_return {

Slice scoped_title(Arena& arena, const std::string& raw) {
  ArenaScope scope{arena};
  Slice title = arena.copy(raw);
  return title;  // bad: the scope pops this storage on the way out
}

Slice leased_label(ArenaPool& pool, const std::string& raw) {
  auto lease = pool.acquire();
  return lease->copy(raw);  // bad: the lease resets the arena on return
}

const char* reset_then_return(Arena& arena, std::size_t n) {
  char* p = arena.alloc_chars(n);
  arena.reset();
  return p;  // bad: reset already recycled the bytes behind p
}

}  // namespace fixture_arena_return
