// known-bad fixture for arena-escape rule (a), global flavor: a view into
// recyclable arena storage parked in a namespace-scope global, which
// outlives every arena. The global carries no MCS_ARENA_STABLE annotation.
#include <string>

namespace fixture_arena_global {

Slice g_last_packet = {};

void remember_packet(Arena& arena, const std::string& payload) {
  g_last_packet = arena.copy(payload);  // bad: global outlives the arena
}

}  // namespace fixture_arena_global
