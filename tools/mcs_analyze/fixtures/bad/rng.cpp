// Fixture: unseeded / raw randomness; the `rng` check must flag each use.
#include <cstdlib>
#include <random>

namespace fixture {

int bad_libc_rand() {
  std::srand(42);        // finding: rng
  return std::rand();    // finding: rng
}

int bad_raw_engine() {
  std::random_device rd;      // finding: rng (nondeterministic seed source)
  std::mt19937 engine{rd()};  // finding: rng (raw engine outside sim/random)
  return static_cast<int>(engine());
}

}  // namespace fixture
