// Fixture: floating-point accumulation in hash order. Float addition is not
// bit-for-bit commutative, so the sum depends on the container's layout.
// The `float-accum` check must flag the += in the loop.
#include <string>
#include <unordered_map>

namespace fixture {

class Balances {
 public:
  double total() {
    double sum = 0.0;
    for (const auto& kv : accounts_) {
      sum += kv.second;  // finding: float-accum
    }
    return sum;
  }

 private:
  std::unordered_map<std::string, double> accounts_;
};

}  // namespace fixture
