// call-graph round-trip fixture, header half: class split across
// header/impl, a virtual method with an override, and free functions
// forming a recursion cycle.
#pragma once

class Widget {
 public:
  virtual ~Widget() = default;
  virtual int render(int depth);
  int helper(int x);
};

class Button : public Widget {
 public:
  int render(int depth) override;
};

int free_ping(int n);
int free_pong(int n);
