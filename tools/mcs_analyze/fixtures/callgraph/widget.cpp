// call-graph round-trip fixture, impl half.
#include "widget.h"

int Widget::render(int depth) { return helper(depth); }

int Widget::helper(int x) { return x + free_ping(x); }

int Button::render(int depth) {
  Widget* base = this;
  return base->render(depth - 1);  // virtual dispatch through a base pointer
}

int free_ping(int n) { return n <= 0 ? 0 : free_pong(n - 1); }

int free_pong(int n) { return free_ping(n); }
