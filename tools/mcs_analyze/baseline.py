"""Baseline handling: accepted findings recorded in a JSON file so the tool
can gate on *new* findings only (clang-tidy style).

Keys are (path, check, normalized-line-text) — line numbers drift with every
edit, line text rarely does, so a baseline survives unrelated churn but a
reworded or moved-to-a-new-file finding correctly shows up as new. Each
entry carries a human `why` so the baseline stays justified, not a dumping
ground (CI reviews it like code).
"""

from __future__ import annotations

import json
from pathlib import Path


def load(path: Path) -> dict:
    """-> {(path, check, context): why}"""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    out = {}
    for entry in data.get("findings", []):
        key = (entry["path"], entry["check"], entry["context"])
        out[key] = entry.get("why", "")
    return out


def apply(findings, accepted: dict) -> None:
    """Mark findings present in the baseline; mutates in place."""
    for f in findings:
        if f.key() in accepted:
            f.baselined = True


def write(path: Path, findings) -> int:
    """Write every active (non-suppressed) finding as the new baseline,
    preserving `why` strings for keys that already existed."""
    previous = load(path) if path.is_file() else {}
    entries = []
    seen = set()
    for f in findings:
        if f.suppressed:
            continue
        key = f.key()
        if key in seen:
            continue
        seen.add(key)
        entries.append({
            "path": f.path,
            "line": f.line,  # informational; not part of the key
            "check": f.check,
            "context": f.context,
            "why": previous.get(key, "TODO: justify or fix"),
        })
    doc = {
        "comment": "Accepted mcs_analyze findings. Keyed by "
                   "(path, check, context); 'line' is informational. "
                   "Every entry needs a real 'why' to survive review.",
        "findings": entries,
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return len(entries)
