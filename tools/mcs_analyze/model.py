"""Shared source model for mcs_analyze.

Both frontends (the libclang one when `clang.cindex` is importable, the
token/structural one otherwise) lower each translation unit into these
records; every check runs against this model, so check logic is written
once and never depends on which frontend produced the facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Finding:
    path: str  # repo-relative when possible
    line: int
    check: str
    severity: str  # 'error' | 'warning'
    message: str
    context: str = ""  # normalized source line text (baseline key)
    suppressed: bool = False
    baselined: bool = False

    def key(self):
        return (self.path, self.check, self.context)

    def sort_key(self):
        # (path, check, context) first: the same triple keys the baseline, so
        # ANALYZE_findings.json diffs stay stable under unrelated line drift.
        return (self.path, self.check, self.context, self.line, self.message)


@dataclass
class Member:
    name: str
    type_text: str
    line: int
    has_init: bool = False
    guarded_by: str | None = None  # MCS_GUARDED_BY argument text
    is_static: bool = False
    is_mutable: bool = False
    is_thread_local: bool = False
    is_const: bool = False
    arena_stable: bool = False  # MCS_ARENA_STABLE: intentional view transfer


@dataclass
class Method:
    name: str
    line: int
    access: str  # 'public' | 'protected' | 'private'
    is_const: bool = False
    is_static: bool = False
    is_special: bool = False  # ctor/dtor/operator/defaulted/deleted
    externally_serialized: bool = False
    arena_stable: bool = False  # MCS_ARENA_STABLE: returned view is vetted
    body: tuple | None = None  # (start_tok, end_tok) into the file's tokens


@dataclass
class ClassInfo:
    name: str
    line: int
    path: str
    members: dict = field(default_factory=dict)  # name -> Member
    methods: list = field(default_factory=list)  # [Method]
    bases: list = field(default_factory=list)  # direct base class names
    owns_arena: bool = False  # MCS_OWNS_ARENA: fields die with the arena

    def member(self, name):
        return self.members.get(name)

    def method_named(self, name):
        return [m for m in self.methods if m.name == name]


@dataclass(eq=False)  # identity hash: call-graph nodes live in dict keys
class FunctionDef:
    """A function body: free function, out-of-class method def, or the body
    attached to an inline method. `cls_name` is None for free functions."""

    name: str
    cls_name: str | None
    line: int
    path: str
    body: tuple  # (start_tok, end_tok)
    is_const: bool = False
    externally_serialized: bool = False
    arena_stable: bool = False  # MCS_ARENA_STABLE on the definition
    params: list = field(default_factory=list)  # [(type_text, name)]
    locals: dict = field(default_factory=dict)  # name -> type_text


@dataclass
class RangeFor:
    line: int
    container_tokens: list  # tokens of the range expression
    body: tuple  # (start_tok, end_tok)
    func: FunctionDef | None


@dataclass
class Lambda:
    line: int
    captures: list  # [('ref'|'val'|'this'|'default_ref'|'default_val', name)]
    body: tuple
    context_callee: str | None  # e.g. 'emplace_back', 'submit', 'thread'
    context_receiver: str | None  # e.g. 'workers_'
    func: FunctionDef | None  # enclosing function definition


@dataclass
class GlobalVar:
    """Namespace-scope variable definition (including anonymous namespaces)."""

    name: str
    type_text: str
    line: int
    path: str
    is_const: bool = False
    is_thread_local: bool = False
    is_static: bool = False  # internal linkage; irrelevant to shard safety
    arena_stable: bool = False  # MCS_ARENA_STABLE: intentional view transfer


@dataclass
class FileModel:
    path: Path
    rel: str
    tokens: list
    classes: list = field(default_factory=list)
    functions: list = field(default_factory=list)
    loops: list = field(default_factory=list)
    lambdas: list = field(default_factory=list)
    globals: list = field(default_factory=list)  # [GlobalVar]
    # line -> set of check names allowed there ('*' = all)
    suppressions: dict = field(default_factory=dict)


class Project:
    """All analyzed files plus a cross-file class index (headers define the
    classes whose methods live in the .cpp files)."""

    def __init__(self, files):
        self.files = files
        self.class_index: dict[str, ClassInfo] = {}
        self.function_index: dict[str, list[FunctionDef]] = {}
        self._callgraph = None
        for fm in files:
            for ci in fm.classes:
                # First definition wins; redefinitions across TUs are rare
                # in this codebase and harmless for lookup purposes.
                self.class_index.setdefault(ci.name, ci)
            for fn in fm.functions:
                self.function_index.setdefault(fn.name, []).append(fn)

    def callgraph(self):
        """Project-wide call graph, built once and shared by every
        interprocedural check (hotpath-alloc, shard-escape, lock-order)."""
        if self._callgraph is None:
            import callgraph as callgraph_mod

            self._callgraph = callgraph_mod.CallGraph(self)
        return self._callgraph

    def suppressed(self, fm: FileModel, line: int, check: str) -> bool:
        allowed = fm.suppressions.get(line, ())
        return "*" in allowed or check in allowed or _alias(check) in allowed


# Legacy detlint rule names still honored in allow() comments.
_ALIASES = {
    "unordered-sink": "unordered-sched",
    "wallclock": "wallclock",
    "rng": "rng",
    "uninit-pod": "uninit-pod",
}


def _alias(check: str) -> str:
    return _ALIASES.get(check, check)
