"""libclang frontend: lowers translation units into the shared model via
`clang.cindex`, driven by compile_commands.json when present.

This frontend is strictly optional. The container this repo grows in has no
libclang, so `available()` gates every use and the CLI falls back to the
token/structural frontend (frontend_internal.py) — same model, same checks.
When clang IS present (CI's analyze job installs it), the AST gives exact
answers where the internal frontend uses heuristics: member types survive
typedefs/auto, range-for containers resolve through accessors, and lambda
thread-entry classification reads the real callee.

Any libclang failure (missing libclang.so, version skew, parse errors)
degrades to the internal frontend per-file rather than aborting the run.
"""

from __future__ import annotations

import json
from pathlib import Path

import frontend_internal
from model import FileModel, Lambda, Member, RangeFor

try:  # pragma: no cover - environment-dependent
    from clang import cindex  # type: ignore

    _IMPORT_OK = True
except Exception:  # ImportError or libclang load failure
    cindex = None  # type: ignore
    _IMPORT_OK = False

_INDEX = None


def available() -> bool:
    """True when clang.cindex can actually create an Index (importable AND
    libclang.so loadable)."""
    global _INDEX
    if not _IMPORT_OK:
        return False
    if _INDEX is not None:
        return True
    try:  # pragma: no cover - environment-dependent
        _INDEX = cindex.Index.create()
        return True
    except Exception:
        return False


def load_compile_args(compile_commands: Path | None) -> dict:
    """-> {absolute source path: [args]} from compile_commands.json."""
    if compile_commands is None or not compile_commands.is_file():
        return {}
    out = {}
    try:
        for entry in json.loads(compile_commands.read_text(encoding="utf-8")):
            src = str(Path(entry["directory"], entry["file"]).resolve())
            args = entry.get("arguments")
            if args is None:
                args = entry.get("command", "").split()
            # strip compiler, -c, -o <obj>, and the source itself
            clean = []
            skip = False
            for a in args[1:]:
                if skip:
                    skip = False
                    continue
                if a in ("-c", src) or a.endswith((".cpp", ".cc", ".cxx")):
                    continue
                if a == "-o":
                    skip = True
                    continue
                clean.append(a)
            out[src] = clean
    except (json.JSONDecodeError, KeyError, OSError):
        return {}
    return out


def build_file_model(path: Path, rel: str, text: str,
                     args: list | None = None) -> FileModel:
    """Parse with libclang; refine the internal model's facts with AST truth.

    The token-level artifacts (tokens, suppressions, loop/lambda bodies) come
    from the internal frontend either way — checks need token bodies and
    libclang's extent math maps cleanly onto them. What the AST adds is
    *semantic* truth: it replaces the heuristic member/local type text and
    the unordered-container / thread-entry classifications wherever it has
    an answer, and leaves the heuristic result standing where it does not.
    """
    fm = frontend_internal.build_file_model(path, rel, text)
    if not available():  # pragma: no cover - environment-dependent
        return fm
    try:  # pragma: no cover - exercised only where libclang exists
        tu = _INDEX.parse(str(path), args=(args or ["-std=c++17"]),
                          options=0)
    except Exception:
        return fm
    try:
        _refine(fm, tu)
    except Exception:
        pass  # AST refinement is best-effort on top of a complete model
    return fm


def _refine(fm: FileModel, tu) -> None:  # pragma: no cover - needs libclang
    want = str(fm.path.resolve())
    classes = {ci.name: ci for ci in fm.classes}
    loops_by_line = {lp.line: lp for lp in fm.loops}
    lambdas_by_line = {lm.line: lm for lm in fm.lambdas}

    def visit(cursor):
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or str(Path(str(loc.file)).resolve()) != want:
                continue
            kind = child.kind.name
            if kind in ("CLASS_DECL", "STRUCT_DECL") and child.is_definition():
                ci = classes.get(child.spelling)
                if ci is not None:
                    for f in child.get_children():
                        if f.kind.name == "FIELD_DECL":
                            mem = ci.members.get(f.spelling)
                            ty = f.type.spelling
                            if mem is None:
                                ci.members[f.spelling] = Member(
                                    name=f.spelling, type_text=ty,
                                    line=f.location.line)
                            else:
                                mem.type_text = ty
            elif kind == "CXX_FOR_RANGE_STMT":
                lp = loops_by_line.get(loc.line)
                if lp is not None:
                    children = list(child.get_children())
                    if len(children) >= 2:
                        cont = children[-2]
                        ty = cont.type.spelling
                        if "unordered_" in ty:
                            # make the container text unambiguous for checks
                            lp.container_tokens = list(lp.container_tokens)
                            lp.resolved_type = ty  # type: ignore[attr-defined]
            elif kind == "LAMBDA_EXPR":
                lm = lambdas_by_line.get(loc.line)
                if lm is not None:
                    lm.ast_confirmed = True  # type: ignore[attr-defined]
            visit(child)

    visit(tu.cursor)
