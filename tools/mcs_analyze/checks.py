"""Check implementations for mcs_analyze.

Every check consumes the shared model (model.py) produced by whichever
frontend ran, and yields Finding records. Six families:

  determinism  wallclock, rng, getenv, unordered-sink, float-accum,
               uninit-pod — the patterns that break fixed-seed replay or
               byte-identical JSON output.
  concurrency  unguarded-field, sim-escape — fields touched from thread
               lambdas must be annotated/atomic/thread-local, and no
               Simulator/Packet may cross a cell-thread boundary.
  contracts    missing-contract — public mutating methods in the component
               layers should carry MCS_ASSERT/MCS_INVARIANT coverage.
  hotpath      hotpath-alloc — heap allocation, std::string churn, and
               container growth reachable from per-packet/per-request entry
               points (the zero-copy work-list; interprocedural).
  shard        shard-escape — mutable globals/statics reachable from event
               handlers: the precondition audit for sharded multi-kernel
               simulation (interprocedural).
  locking      lock-order — cycles in the mutex acquisition graph and
               cond-var waits holding a second lock (interprocedural).
  arena        arena-escape — arena-backed views/pointers (Arena::copy,
               alloc_chars, BufWriter::view, functions summarized as
               returning arena memory) escaping their arena's lifetime:
               stored into long-lived fields/globals, returned from a
               function that recycles the arena, used after an invalidating
               reset/append, or handed to another thread (interprocedural;
               DESIGN.md §13).

The last four run over the project call graph (callgraph.py, DESIGN.md §11)
rather than file by file.

Suppress a finding with `// mcs-analyze: allow(<check>)` on (or directly
above) the offending line; legacy `// detlint: allow(<rule>)` spellings are
honored for the rules detlint had.
"""

from __future__ import annotations

import re

from model import FileModel, Finding, Project

FAMILIES = {
    "determinism": ["wallclock", "rng", "getenv", "unordered-sink",
                    "float-accum", "uninit-pod"],
    "concurrency": ["unguarded-field", "sim-escape"],
    "contracts": ["missing-contract"],
    "hotpath": ["hotpath-alloc"],
    "shard": ["shard-escape"],
    "locking": ["lock-order"],
    "arena": ["arena-escape"],
}

ALL_CHECKS = [c for checks in FAMILIES.values() for c in checks]

SEVERITY = {c: "error" for c in ALL_CHECKS}
SEVERITY["missing-contract"] = "warning"
SEVERITY["float-accum"] = "warning"
SEVERITY["hotpath-alloc"] = "warning"  # inventory check: baselined work-list
SEVERITY["shard-escape"] = "warning"  # audit check: baselined until sharding

# Files allowed to use the raw <random> machinery: the seeded wrapper itself.
RNG_EXEMPT = re.compile(r"(^|/)sim/random\.(h|cpp)$")

# Files allowed to read the host clock: the trace exporter's explicit
# wallclock anchor (obs/trace_clock.h) and the telemetry overhead stopwatch
# (obs/telemetry_clock.h). Both are opt-in measurement tools that never feed
# simulated behaviour or default outputs.
WALLCLOCK_EXEMPT = re.compile(
    r"(^|/)obs/(trace_clock|telemetry_clock)\.(h|cpp)$")

RAW_ENGINES = frozenset(
    "mt19937 mt19937_64 minstd_rand minstd_rand0 ranlux24 ranlux48 "
    "ranlux24_base ranlux48_base knuth_b default_random_engine".split())

RAND_CALLS = frozenset("rand srand random drand48 lrand48 mrand48".split())

CLOCK_MEMBERS = frozenset(
    "system_clock steady_clock high_resolution_clock".split())

OS_CLOCK_CALLS = frozenset(
    "gettimeofday clock_gettime timespec_get ftime localtime gmtime ctime "
    "asctime localtime_r gmtime_r ctime_r asctime_r localtime_s gmtime_s "
    "ctime_s asctime_s".split())

# Simulator / network / serialization calls that make unordered iteration
# order observable: as event order (scheduling, sending) or as output byte
# order (JSON, stats, trace sinks).
SCHED_SINKS = frozenset(
    "after at schedule send transmit notify_handoff".split())
OUTPUT_SINKS = frozenset(
    "key value begin_object end_object begin_array end_array raw "
    "to_json record record_time add merge counter histogram set_value "
    "set_text log trace".split())
SINK_CALLS = SCHED_SINKS | OUTPUT_SINKS

# Receiver-name heuristic backup: calls through an object whose name says
# it is a serializer/stats sink, whatever the method is called.
SINK_RECEIVER = re.compile(
    r"(^|_)(json|writer|stats|trace|registry|snapshot)s?_?$", re.IGNORECASE)

UNORDERED_TYPES = re.compile(
    r"\bunordered_(map|set|multimap|multiset)\b")

SCALAR_WORDS = frozenset(
    "bool char short int long float double size_t ssize_t ptrdiff_t "
    "int8_t int16_t int32_t int64_t uint8_t uint16_t uint32_t uint64_t "
    "EventId unsigned signed".split())
QUALIFIER_WORDS = frozenset(
    "static mutable constexpr const volatile inline std sim".split())

CONTRACT_MACROS = frozenset(
    "MCS_ASSERT MCS_INVARIANT MCS_UNREACHABLE MCS_PRECONDITION".split())

# src/ directories whose public mutating methods are expected to carry
# contract coverage: the six component layers of the paper's system model.
COMPONENT_DIRS = ("src/net/", "src/wireless/", "src/mobileip/",
                  "src/transport/", "src/middleware/", "src/host/")

SYNC_TYPE = re.compile(
    r"\b(Mutex|MutexLock|CondVar|mutex|condition_variable(_any)?|"
    r"atomic|atomic_\w+|ThreadConfinementChecker|once_flag|barrier|latch|"
    r"shared_mutex|thread)\b")

ESCAPE_TYPES = re.compile(r"\b(Simulator|Packet)\b")

THREAD_ENTRY_CALLEES = frozenset(
    "thread submit submit_task async emplace_back push_back".split())


def _emit(out, project, fm, line, check, message):
    f = Finding(path=fm.rel, line=line, check=check,
                severity=SEVERITY[check], message=message,
                context=_line_text(fm, line))
    if project.suppressed(fm, line, check):
        f.suppressed = True
    out.append(f)


_LINE_CACHE: dict[str, list[str]] = {}


def _line_text(fm: FileModel, line: int) -> str:
    lines = _LINE_CACHE.get(fm.rel)
    if lines is None:
        try:
            lines = fm.path.read_text(encoding="utf-8",
                                      errors="replace").split("\n")
        except OSError:
            lines = []
        _LINE_CACHE[fm.rel] = lines
    if 1 <= line <= len(lines):
        return " ".join(lines[line - 1].split())
    return ""


def _prev_tok(toks, i):
    return toks[i - 1] if i > 0 else None


def _next_tok(toks, i):
    return toks[i + 1] if i + 1 < len(toks) else None


def _is_call(toks, i):
    nxt = _next_tok(toks, i)
    return nxt is not None and nxt.kind == "punct" and nxt.text == "("


def _is_member_access(toks, i):
    """True when toks[i] is accessed through `.`/`->` or a non-std `X::`."""
    prev = _prev_tok(toks, i)
    if prev is None or prev.kind != "punct":
        return False
    if prev.text in (".", "->"):
        return True
    if prev.text == "::":
        qual = toks[i - 2] if i >= 2 else None
        return not (qual is not None and qual.kind == "id"
                    and qual.text == "std")
    return False


# ---------------------------------------------------------------------------
# determinism family


def check_wallclock(project: Project, fm: FileModel, out):
    if WALLCLOCK_EXEMPT.search(fm.rel):
        return
    toks = fm.tokens
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.text in CLOCK_MEMBERS:
            prev = _prev_tok(toks, i)
            if prev is not None and prev.kind == "punct" \
                    and prev.text == "::":
                qual = toks[i - 2] if i >= 2 else None
                if qual is not None and qual.kind == "id" \
                        and qual.text == "chrono":
                    _emit(out, project, fm, t.line, "wallclock",
                          f"std::chrono::{t.text}: simulated code must use "
                          "Simulator::now()")
            continue
        if t.text in ("time", "clock") and _is_call(toks, i) \
                and not _is_member_access(toks, i):
            # time(NULL/nullptr/0/&t/) and clock() only — a member named
            # `time(...)` or a local call with real args is not the libc API.
            j = i + 2
            args = []
            depth = 1
            while j < len(toks) and depth > 0:
                x = toks[j]
                if x.kind == "punct":
                    if x.text == "(":
                        depth += 1
                    elif x.text == ")":
                        depth -= 1
                        j += 1
                        continue
                if depth > 0:
                    args.append(x)
                j += 1
            texts = [a.text for a in args]
            libc_arg = (texts == [] or texts in (["NULL"], ["nullptr"], ["0"])
                        or (len(texts) == 2 and texts[0] == "&"))
            if t.text == "clock" and texts != []:
                libc_arg = False
            if libc_arg:
                _emit(out, project, fm, t.line, "wallclock",
                      f"{t.text}(): simulated code must use Simulator::now()")
            continue
        if t.text in OS_CLOCK_CALLS and _is_call(toks, i):
            _emit(out, project, fm, t.line, "wallclock",
                  f"{t.text}(): simulated code must use Simulator::now()")


def check_rng(project: Project, fm: FileModel, out):
    if RNG_EXEMPT.search(fm.rel):
        return
    toks = fm.tokens
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.text == "random_device":
            _emit(out, project, fm, t.line, "rng",
                  "std::random_device: use the seeded sim::Rng instead")
        elif t.text in RAW_ENGINES:
            _emit(out, project, fm, t.line, "rng",
                  f"raw <random> engine {t.text}: use the seeded sim::Rng "
                  "instead")
        elif t.text in RAND_CALLS and _is_call(toks, i) \
                and not _is_member_access(toks, i):
            _emit(out, project, fm, t.line, "rng",
                  f"{t.text}(): use the seeded sim::Rng instead")


def check_getenv(project: Project, fm: FileModel, out):
    toks = fm.tokens
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in ("getenv", "secure_getenv") \
                and _is_call(toks, i) and not _is_member_access(toks, i):
            prev = _prev_tok(toks, i)
            if prev is not None and prev.kind == "punct" \
                    and prev.text == "::":
                qual = toks[i - 2] if i >= 2 else None
                if qual is not None and qual.kind == "id" \
                        and qual.text != "std":
                    continue
            _emit(out, project, fm, t.line, "getenv",
                  f"{t.text}(): environment reads make runs "
                  "host-configuration-dependent; plumb the value through "
                  "run options instead")


def _container_is_unordered(project: Project, fm: FileModel, loop) -> bool:
    resolved = getattr(loop, "resolved_type", None)
    if resolved is not None:  # AST frontend resolved the exact type
        return "unordered_" in resolved
    toks = loop.container_tokens
    text = " ".join(t.text for t in toks)
    if UNORDERED_TYPES.search(text):
        return True  # inline temporary or decltype spelling
    # Resolve `name`, `obj.name`, `obj->name`, `name()` to a declared type.
    ids = [t for t in toks if t.kind == "id"]
    if not ids:
        return False
    base = ids[-1].text
    ty = None
    if loop.func is not None:
        ty = loop.func.locals.get(base)
        if ty is None and loop.func.cls_name:
            ci = project.class_index.get(loop.func.cls_name)
            if ci is not None:
                mem = ci.member(base)
                if mem is not None:
                    ty = mem.type_text
                else:
                    # accessor: `for (auto& kv : table())`
                    for m in ci.method_named(base):
                        pass  # return types aren't modeled; fall through
    if ty is None:
        # last resort: any class in the project with a member of this name
        for ci in project.class_index.values():
            mem = ci.member(base)
            if mem is not None and UNORDERED_TYPES.search(mem.type_text):
                return True
        return False
    return bool(UNORDERED_TYPES.search(ty))


def _body_sinks(project: Project, fm: FileModel, body, depth=1):
    """Scan a token body for sink calls; returns (call_name, line) or None.
    Expands one level into project-local callees so a loop that serializes
    via a helper is still caught."""
    toks = fm.tokens
    start, end = body
    for i in range(start + 1, end):
        t = toks[i]
        if t.kind != "id" or not _is_call(toks, i):
            continue
        if t.text in SINK_CALLS:
            if t.text in OUTPUT_SINKS:
                # demand a receiver for the generic output names, so a free
                # function called add() doesn't trip the check
                prev = _prev_tok(toks, i)
                if t.text in ("add", "merge", "log", "trace", "raw",
                              "key", "value"):
                    if prev is None or prev.kind != "punct" \
                            or prev.text not in (".", "->"):
                        continue
            return (t.text, t.line)
        recv = _prev_tok(toks, i)
        if recv is not None and recv.kind == "punct" \
                and recv.text in (".", "->") and i >= 2 \
                and toks[i - 2].kind == "id" \
                and SINK_RECEIVER.search(toks[i - 2].text):
            return (t.text, t.line)
        if depth > 0:
            for fn in project.function_index.get(t.text, ()):
                # only expand same-file or same-class helpers; cross-file
                # name collisions would be guesswork
                if fn.path == fm.rel:
                    file_model = project_file(project, fn.path)
                    if file_model is not None:
                        hit = _body_sinks(project, file_model, fn.body,
                                          depth - 1)
                        if hit is not None:
                            return (f"{t.text}() -> {hit[0]}", t.line)
    return None


def project_file(project: Project, rel: str):
    for fm in project.files:
        if fm.rel == rel:
            return fm
    return None


def check_unordered_sink(project: Project, fm: FileModel, out):
    for loop in fm.loops:
        if not _container_is_unordered(project, fm, loop):
            continue
        hit = _body_sinks(project, fm, loop.body)
        if hit is None:
            continue
        call, _ = hit
        base = next((t.text for t in reversed(loop.container_tokens)
                     if t.kind == "id"), "<expr>")
        _emit(out, project, fm, loop.line, "unordered-sink",
              f"iterating unordered container '{base}' while reaching sink "
              f"'{call}': hash order becomes event/output order; iterate a "
              "deterministic container or collect and sort first")


def _float_typed(name, loop, project):
    if loop.func is not None:
        ty = loop.func.locals.get(name)
        if ty is not None:
            return "double" in ty or "float" in ty
        if loop.func.cls_name:
            ci = project.class_index.get(loop.func.cls_name)
            if ci is not None:
                mem = ci.member(name)
                if mem is not None:
                    return ("double" in mem.type_text
                            or "float" in mem.type_text)
    return False


def check_float_accum(project: Project, fm: FileModel, out):
    """`sum += x` on a float/double inside an unordered-container loop:
    accumulation order is hash-seed dependent and float addition does not
    commute bit-for-bit, so the result is not replayable."""
    toks = fm.tokens
    for loop in fm.loops:
        if not _container_is_unordered(project, fm, loop):
            continue
        start, end = loop.body
        for i in range(start + 1, end):
            t = toks[i]
            if t.kind != "punct" or t.text not in ("+=", "-=", "*="):
                continue
            lhs = _prev_tok(toks, i)
            if lhs is None or lhs.kind != "id":
                continue
            if _float_typed(lhs.text, loop, project):
                _emit(out, project, fm, t.line, "float-accum",
                      f"floating-point accumulation '{lhs.text} {t.text}' "
                      "inside unordered iteration: sum order is hash-seed "
                      "dependent; accumulate into a sorted copy instead")


def _is_scalar_member(type_text: str) -> bool:
    words = [w for w in type_text.replace("*", " * ").replace("&", " ")
             .split() if w != "::"]
    core = [w for w in words if w not in QUALIFIER_WORDS]
    if not core:
        return False
    for w in core:
        if w == "*":
            continue
        if w not in SCALAR_WORDS:
            return False
    return True


def check_uninit_pod(project: Project, fm: FileModel, out):
    for ci in fm.classes:
        for mem in ci.members.values():
            if mem.has_init or mem.is_static:
                continue
            if mem.is_const:
                # const members cannot be assigned later; every constructor
                # must initialize them or the TU does not compile, so they
                # can never be read indeterminate.
                continue
            if not _is_scalar_member(mem.type_text):
                continue
            _emit(out, project, fm, mem.line, "uninit-pod",
                  f"scalar member '{mem.name}' has no initializer: "
                  "default-initialize at the declaration so replay never "
                  "reads indeterminate memory")


# ---------------------------------------------------------------------------
# concurrency family


def _is_thread_entry(lam) -> bool:
    if lam.context_callee is None:
        return False
    if lam.context_callee == "thread":
        return True
    if lam.context_callee in ("submit", "submit_task", "async"):
        return True
    if lam.context_callee in ("emplace_back", "push_back"):
        recv = lam.context_receiver or ""
        return "worker" in recv or "thread" in recv
    return False


def _member_is_thread_ok(mem) -> bool:
    if mem.guarded_by is not None:
        return True  # -Wthread-safety enforces the lock discipline from here
    if mem.is_thread_local or mem.is_const or mem.is_static:
        return True  # static: assumed set up before threads start
    return bool(SYNC_TYPE.search(mem.type_text))


def _touched_members(project, fm, ci, body, depth=1, seen=None):
    """Members of `ci` referenced in a token body, following same-class
    method calls one level deep (worker entry usually just calls a loop)."""
    if seen is None:
        seen = set()
    toks = fm.tokens
    start, end = body
    touched = {}
    for i in range(start + 1, end):
        t = toks[i]
        if t.kind != "id":
            continue
        prev = _prev_tok(toks, i)
        if prev is not None and prev.kind == "punct" \
                and prev.text in (".", "->", "::"):
            qual = toks[i - 2] if i >= 2 else None
            this_access = (prev.text == "->" and qual is not None
                           and qual.kind == "id" and qual.text == "this")
            if not this_access:
                continue  # access through some other object
        mem = ci.member(t.text)
        if mem is not None:
            touched.setdefault(t.text, (mem, t.line))
            continue
        if depth > 0 and _is_call(toks, i) and t.text not in seen:
            for m in ci.method_named(t.text):
                if m.body is not None:
                    seen.add(t.text)
                    sub = _touched_members(project, fm, ci, m.body,
                                           depth - 1, seen)
                    for name, v in sub.items():
                        touched.setdefault(name, v)
    return touched


def check_unguarded_field(project: Project, fm: FileModel, out):
    for lam in fm.lambdas:
        if not _is_thread_entry(lam):
            continue
        caps = {kind for kind, _ in lam.captures}
        if "this" not in caps and "default_ref" not in caps \
                and "default_val" not in caps:
            continue  # no path to class fields without a this capture
        if lam.func is None or lam.func.cls_name is None:
            continue
        ci = project.class_index.get(lam.func.cls_name)
        if ci is None:
            continue
        for name, (mem, line) in sorted(
                _touched_members(project, fm, ci, lam.body).items()):
            if _member_is_thread_ok(mem):
                continue
            _emit(out, project, fm, line, "unguarded-field",
                  f"field '{ci.name}::{name}' is touched from a thread-entry "
                  "lambda but is not MCS_GUARDED_BY-annotated, atomic, "
                  "thread_local, or const")


def check_sim_escape(project: Project, fm: FileModel, out):
    for lam in fm.lambdas:
        if not _is_thread_entry(lam):
            continue
        for kind, name in lam.captures:
            if kind in ("default_ref", "default_val", "this", ""):
                continue
            ty = None
            if lam.func is not None:
                ty = lam.func.locals.get(name)
                if ty is None and lam.func.cls_name:
                    ci = project.class_index.get(lam.func.cls_name)
                    if ci is not None:
                        mem = ci.member(name)
                        if mem is not None:
                            ty = mem.type_text
            if ty is not None and ESCAPE_TYPES.search(ty):
                _emit(out, project, fm, lam.line, "sim-escape",
                      f"capture '{name}' ({ty}) hands a simulator-owned "
                      "object to another thread: Simulator and Packet are "
                      "cell-thread confined by design (DESIGN.md §9)")


# ---------------------------------------------------------------------------
# contracts family


def _body_statement_count(fm: FileModel, body) -> int:
    toks = fm.tokens
    start, end = body
    return sum(1 for i in range(start + 1, end)
               if toks[i].kind == "punct" and toks[i].text == ";")


def _body_has_contract(fm: FileModel, body) -> bool:
    toks = fm.tokens
    start, end = body
    return any(toks[i].kind == "id" and toks[i].text in CONTRACT_MACROS
               for i in range(start + 1, end))


def _find_method_body(project: Project, ci, method):
    """Inline body, else the out-of-class definition from any file."""
    if method.body is not None:
        return project_file_for_class(project, ci), method.body
    for fn in project.function_index.get(method.name, ()):
        if fn.cls_name == ci.name:
            return project_file(project, fn.path), fn.body
    return None, None


def project_file_for_class(project: Project, ci):
    return project_file(project, ci.path)


def check_missing_contract(project: Project, fm: FileModel, out):
    if not any(fm.rel.startswith(d) or ("/" + d) in fm.rel
               for d in COMPONENT_DIRS):
        return
    for ci in fm.classes:
        for m in ci.methods:
            if m.access != "public" or m.is_const or m.is_special \
                    or m.is_static:
                continue
            if m.name in ("clear", "reset"):  # trivial by convention here
                continue
            body_fm, body = _find_method_body(project, ci, m)
            if body_fm is None or body is None:
                continue
            if _body_statement_count(body_fm, body) < 2:
                continue  # one-line setters don't need a contract
            if _body_has_contract(body_fm, body):
                continue
            _emit(out, project, fm, m.line, "missing-contract",
                  f"public mutating method '{ci.name}::{m.name}' has no "
                  "MCS_ASSERT/MCS_INVARIANT coverage (see DESIGN.md §6)")


# ---------------------------------------------------------------------------
# interprocedural families: hotpath-alloc / shard-escape / lock-order.
# These run once per project over the shared call graph (callgraph.py),
# not once per file. DESIGN.md §11 documents the model and its limits.

# Per-packet / per-request entry points of the paper's six-component pipeline
# (browser -> wireless -> transport -> Mobile IP -> gateway -> host), plus the
# JSON stats export. Reachability from any of these anchors hotpath-alloc
# (allocation on a per-event path) and shard-escape (every shard kernel runs
# all components, so one reachable shared mutable object already means
# cross-kernel sharing).
HOTPATH_ENTRIES = (
    ("browser", "MicroBrowser", "browse"),
    ("wireless", "WirelessMedium", "transmit"),
    ("wireless", "WirelessMedium", "deliver"),
    ("net", "Node", "send"),
    ("net", "Node", "receive"),
    ("net", "Link", "transmit"),
    ("transport", "TcpSocket", "send"),
    ("transport", "TcpSocket", "on_packet"),
    ("transport", "WtpEndpoint", "invoke"),
    ("transport", "WtpEndpoint", "on_datagram"),
    ("mobileip", "HomeAgent", "tunnel_to"),
    ("mobileip", "ForeignAgent", "on_tunnel_packet"),
    # PR 8: the gateways translate through the fused zero-copy pipeline
    # (translate.cpp); the legacy tree pipeline (html_to_wml/html_to_chtml/
    # wbxml_encode) remains as the reference implementation for the
    # translate equivalence tests but is off the per-request path.
    ("gateway", None, "translate_html"),
    ("host", "HttpServer", "request"),
    ("host", "DbServer", "on_line"),
    ("export", "StatsRegistry", "to_json"),
)

ALLOC_CALLS = frozenset(
    "make_unique make_shared allocate_shared to_string substr strf "
    "vstrf".split())

GROWTH_CALLS = frozenset(
    "push_back emplace_back emplace insert append".split())

STRING_TYPES = frozenset("string ostringstream stringstream".split())

LOCK_WRAPPERS = frozenset(
    "MutexLock lock_guard unique_lock scoped_lock shared_lock".split())

MUTEX_TYPE = re.compile(
    r"\b(Mutex|mutex|shared_mutex|recursive_mutex|timed_mutex)\b")

CONDVAR_TYPE = re.compile(r"\b(CondVar|condition_variable(_any)?)\b")


def _hotpath_reach(project: Project):
    """(callgraph, reach, entry_meta): reach maps every FunctionDef reachable
    from a HOTPATH_ENTRIES definition to the entry that first reached it;
    entry_meta maps entry FunctionDefs to ('Cls::name'|'name', component).
    Memoized on the project so both interprocedural reachability checks and
    the selftest share one BFS."""
    cached = getattr(project, "_hotpath_reach", None)
    if cached is not None:
        return cached
    cg = project.callgraph()
    entry_meta = {}
    entries = []
    for component, cls, method in HOTPATH_ENTRIES:
        for fn in cg.functions_named(cls, method):
            if fn not in entry_meta:
                label = f"{cls}::{method}" if cls else method
                entry_meta[fn] = (label, component)
                entries.append(fn)
    reach = cg.reachable(entries)
    project._hotpath_reach = (cg, reach, entry_meta)
    return project._hotpath_reach


def check_hotpath_alloc(project: Project, out):
    """Allocation, std::string churn, and container growth reachable from a
    per-packet/per-request entry point. One finding per (function, signal
    kind), anchored at the first offending line: the committed inventory is
    the zero-copy roadmap work-list, so it must stay reviewable, not
    enumerate every call site.

    Non-signals (PR 8): the sim/arena.h vocabulary (BufWriter, Arena, cat,
    build — writes into caller-reserved reused capacity or a single
    right-sized allocation, see DESIGN.md §12), and alloc/growth-named calls
    that resolve *definitively* to project-defined functions — those callee
    bodies are in this very scan, so flagging the call site would
    double-count the allocation away from its source (std::string::append
    and friends still flag: their receiver resolves to no project class)."""
    cg, reach, entry_meta = _hotpath_reach(project)
    for fn in reach:
        fm = cg.file_of(fn)
        if fm is None:
            continue
        if fm.rel.endswith("sim/arena.h"):
            continue  # the audited zero-copy vocabulary itself
        entry_fn, _ = reach[fn]
        label, component = entry_meta[entry_fn]
        qual = f"{fn.cls_name}::{fn.name}" if fn.cls_name else fn.name
        toks = fm.tokens
        start, end = fn.body
        sites: dict[str, list[int]] = {}

        def lands_in_project(i) -> bool:
            return bool(cg._resolve(fm, fn, toks, i, allow_fallback=False))

        for i in range(start + 1, end):
            t = toks[i]
            if t.kind != "id":
                continue
            prev = _prev_tok(toks, i)
            nxt = _next_tok(toks, i)
            if t.text == "new" \
                    and not (prev is not None and prev.text == "operator"):
                sites.setdefault("operator new", []).append(t.line)
            elif t.text in ALLOC_CALLS and _is_call(toks, i) \
                    and not lands_in_project(i):
                sites.setdefault("allocating calls "
                                 "(make_*/to_string/substr/strf)",
                                 []).append(t.line)
            elif t.text in GROWTH_CALLS and _is_call(toks, i) \
                    and prev is not None and prev.text in (".", "->") \
                    and not lands_in_project(i):
                sites.setdefault("container growth "
                                 "(push_back/insert/append)",
                                 []).append(t.line)
            elif t.text in STRING_TYPES \
                    and not (prev is not None and prev.text in (".", "->")) \
                    and nxt is not None \
                    and (nxt.kind == "id"
                         or (nxt.kind == "punct" and nxt.text in ("(", "{"))):
                sites.setdefault("std::string construction", []).append(t.line)
        for ty, name in fn.params:
            if "string" in ty and "&" not in ty and "*" not in ty \
                    and "view" not in ty:
                sites.setdefault("by-value std::string parameter",
                                 []).append(fn.line)
        for kind in sorted(sites):
            lines = sites[kind]
            _emit(out, project, fm, min(lines), "hotpath-alloc",
                  f"hot path '{qual}' (reachable from entry '{label}' "
                  f"[{component}]) performs {kind}: {len(lines)} site(s), "
                  "first here — zero-copy work-list (DESIGN.md §11)")


def _shard_components(reach, entry_meta, fns):
    comps = set()
    for fn in fns:
        hit = reach.get(fn)
        if hit is not None:
            comps.add(entry_meta[hit[0]][1])
    return sorted(comps)


def check_shard_escape(project: Project, out):
    """Mutable globals/statics referenced from code reachable from hot-path
    entry points. Synchronized types (atomic/Mutex/...) and thread_local are
    accepted: the audit is for *racy* cross-kernel sharing; determinism of
    synchronized shared state is the determinism family's concern. Instance
    aliasing across components is left to the runtime
    ThreadConfinementChecker (soundness limit, DESIGN.md §11)."""
    cg, reach, entry_meta = _hotpath_reach(project)

    # Candidate shared state: name -> list of (name, kind, decl_fm,
    # decl_line, owner ClassInfo or None).
    candidates: dict[str, list] = {}
    for fm in project.files:
        for gv in fm.globals:
            if gv.is_const or gv.is_thread_local \
                    or SYNC_TYPE.search(gv.type_text):
                continue
            candidates.setdefault(gv.name, []).append(
                (gv.name, "mutable global", fm, gv.line, None))
        for ci in fm.classes:
            for mem in ci.members.values():
                if not mem.is_static or mem.is_const or mem.is_thread_local \
                        or SYNC_TYPE.search(mem.type_text):
                    continue
                candidates.setdefault(mem.name, []).append(
                    (mem.name, "mutable static member", fm, mem.line, ci))

    # One pass over reachable function bodies: which candidates are touched,
    # and from which entry components.
    refs: dict[int, list] = {}  # id(candidate record) -> [fn, ...]
    for fn in reach:
        fm = cg.file_of(fn)
        if fm is None:
            continue
        toks = fm.tokens
        start, end = fn.body
        family = set(cg._family(fn.cls_name)) if fn.cls_name else set()
        for i in range(start + 1, end):
            t = toks[i]
            if t.kind != "id" or t.text not in candidates:
                continue
            prev = _prev_tok(toks, i)
            if prev is not None and prev.text in (".", "->"):
                continue  # instance member of some object, not our static
            if t.text in fn.locals:
                continue  # shadowed by a local
            for rec in candidates[t.text]:
                owner = rec[4]
                if owner is not None:
                    qual = toks[i - 2] if i >= 2 else None
                    qualified = (prev is not None and prev.text == "::"
                                 and qual is not None
                                 and qual.text == owner.name)
                    if not qualified and owner.name not in family:
                        continue
                refs.setdefault(id(rec), (rec, []))[1].append(fn)

        # Function-local statics inside hot-path code are shared across every
        # kernel that runs this function.
        for decl_line, name in _local_statics(toks, start, end):
            entry_fn, _ = reach[fn]
            label, component = entry_meta[entry_fn]
            qual = f"{fn.cls_name}::{fn.name}" if fn.cls_name else fn.name
            _emit(out, project, fm, decl_line, "shard-escape",
                  f"function-local static '{name}' in '{qual}' (reachable "
                  f"from entry '{label}' [{component}]) is one object shared "
                  "by every shard kernel — make it thread_local, per-kernel, "
                  "or const")

    for rec, fns in refs.values():
        name, kind, decl_fm, decl_line, owner = rec
        comps = _shard_components(reach, entry_meta, fns)
        if not comps:
            continue
        shown = f"{owner.name}::{name}" if owner is not None else name
        _emit(out, project, decl_fm, decl_line, "shard-escape",
              f"{kind} '{shown}' is reached from hot-path entry points "
              f"({', '.join(comps)}); sharded kernels would race on it — "
              "make it per-kernel, thread_local, atomic, or lock-guarded")


def _local_statics(toks, start, end):
    """(line, name) for mutable non-thread_local `static` declarations inside
    a function body."""
    out = []
    i = start + 1
    while i < end:
        t = toks[i]
        if t.kind == "id" and t.text == "static":
            decl = []
            j = i + 1
            stop = None
            depth = 0
            while j < end:
                tj = toks[j]
                if tj.kind == "punct":
                    if tj.text in ("<", "(", "[", "{") and stop is None:
                        if tj.text == "<":
                            depth += 1
                        elif depth == 0:
                            stop = tj.text
                            break
                    elif tj.text in (">", ">>"):
                        depth -= 2 if tj.text == ">>" else 1
                    elif tj.text in (";", "=") and depth == 0:
                        stop = tj.text
                        break
                elif tj.kind == "id" and depth == 0:
                    decl.append(tj)
                j += 1
            words = {d.text for d in decl}
            if decl and stop is not None \
                    and not words & {"const", "constexpr", "thread_local",
                                     "assert"} \
                    and not SYNC_TYPE.search(" ".join(words)):
                out.append((t.line, decl[-1].text))
            i = j
        i += 1
    return out


def check_lock_order(project: Project, out):
    """Build the mutex acquisition graph (RAII wrappers + direct .lock())
    across the whole call graph; report acquisition-order cycles, same-mutex
    re-acquisition in scope (sim::Mutex is non-recursive), and cond-var waits
    holding a second lock. unlock() before scope end is ignored
    (conservative; DESIGN.md §11)."""
    cg = project.callgraph()

    sites: dict = {}  # FunctionDef -> (acqs, waits); see _lock_sites
    for fm in project.files:
        for fn in fm.functions:
            sites[fn] = _lock_sites(cg, fm, fn)

    # Transitive set of mutexes a function may acquire (cycle-safe memo).
    closure_memo: dict = {}

    def closure(fn, visiting=None):
        got = closure_memo.get(fn)
        if got is not None:
            return got
        if visiting is None:
            visiting = set()
        if fn in visiting:
            return set()
        visiting.add(fn)
        acc = {a[0] for a in sites.get(fn, ((), ()))[0]}
        for callee, _line in cg.edges.get(fn, ()):
            acc |= closure(callee, visiting)
        visiting.discard(fn)
        closure_memo[fn] = acc
        return acc

    # held-before edges: (a, b) -> first (path, line) where b is taken with
    # a held; plus immediate findings for re-acquisition and cond-var waits.
    edge_sites: dict = {}

    def add_edge(a, b, fm, line):
        key = (a, b)
        at = (fm.rel, line)
        if key not in edge_sites or at < edge_sites[key][0]:
            edge_sites[key] = (at, fm)

    for fm in project.files:
        for fn in fm.functions:
            acqs, waits = sites[fn]
            for b in acqs:
                held = [a for a in acqs
                        if a[1] < b[1] and a[4] > b[1]]  # tok order, in scope
                for a in held:
                    if a[0] == b[0]:
                        _emit(out, project, fm, b[2], "lock-order",
                              f"mutex '{b[0]}' acquired again while already "
                              "held in this scope (sim::Mutex is "
                              "non-recursive: self-deadlock)")
                    else:
                        add_edge(a[0], b[0], fm, b[2])
            for w_tok, w_line, w_canon in waits:
                held = sorted({a[0] for a in acqs
                               if a[1] < w_tok and a[4] > w_tok})
                if len(held) >= 2:
                    _emit(out, project, fm, w_line, "lock-order",
                          f"cond-var wait on '{w_canon}' while holding "
                          f"{len(held)} locks ({', '.join(held)}) — the "
                          "waker needs the second lock too; deadlock risk")
            # Calls made while holding a lock: everything the callee may
            # acquire orders after the held mutex.
            for callee, line in cg.edges.get(fn, ()):
                held = [a for a in acqs if a[3] <= line <= a[5]]
                if not held:
                    continue
                for m in sorted(closure(callee)):
                    for a in held:
                        if m != a[0]:
                            add_edge(a[0], m, fm, line)

    # Cycle detection over the acquisition-order graph.
    adj: dict = {}
    for a, b in edge_sites:
        adj.setdefault(a, set()).add(b)

    def reaches(src, dst):
        seen = set()
        work = [src]
        while work:
            n = work.pop()
            if n == dst:
                return True
            if n in seen:
                continue
            seen.add(n)
            work.extend(adj.get(n, ()))
        return False

    for (a, b) in sorted(edge_sites):
        if not reaches(b, a):
            continue
        (_path, line), fm = edge_sites[(a, b)]
        rev = edge_sites.get((b, a))
        hint = f"; reverse order at {rev[0][0]}:{rev[0][1]}" if rev else ""
        _emit(out, project, fm, line, "lock-order",
              f"lock-order cycle: '{a}' held while acquiring '{b}' here, "
              f"but '{b}' can be held while acquiring '{a}'{hint} — pick "
              "one global acquisition order")


def _lock_sites(cg, fm, fn):
    """Scan one function body for mutex acquisitions and cond-var waits.

    Returns (acqs, waits):
      acqs:  [(canon, tok_idx, line, line, end_line, end_line_tok)] — actually
             (canon, tok_idx, line, start_line, scope_end_tok, end_line)
      waits: [(tok_idx, line, canon)]
    """
    toks = fm.tokens
    start, end = fn.body
    acqs = []  # (canon, tok_idx, line, start_line, scope_end_tok, end_line)
    waits = []
    open_stack = [start]
    pending = []  # acquisitions waiting for their scope to close
    i = start + 1
    while i < end:
        t = toks[i]
        if t.kind == "punct":
            if t.text == "{":
                open_stack.append(i)
            elif t.text == "}":
                b = open_stack.pop() if len(open_stack) > 1 else start
                for rec in pending:
                    if rec["open"] == b:
                        rec["scope_end"] = i
                        rec["end_line"] = t.line
            i += 1
            continue
        if t.kind != "id":
            i += 1
            continue
        if t.text in LOCK_WRAPPERS:
            j = i + 1
            if j < end and toks[j].kind == "punct" and toks[j].text == "<":
                depth = 1
                j += 1
                while j < end and depth:
                    if toks[j].text == "<":
                        depth += 1
                    elif toks[j].text in (">", ">>"):
                        depth -= 2 if toks[j].text == ">>" else 1
                    j += 1
            if j < end and toks[j].kind == "id":
                j += 1  # variable name
            if j < end and toks[j].kind == "punct" \
                    and toks[j].text in ("{", "("):
                close = "}" if toks[j].text == "{" else ")"
                expr = []
                j += 1
                depth = 1
                while j < end and depth:
                    if toks[j].text in ("{", "("):
                        depth += 1
                    elif toks[j].text in ("}", ")"):
                        depth -= 1
                        if not depth:
                            break
                    expr.append(toks[j])
                    j += 1
                canon = _canon_mutex(cg, fm, fn, expr)
                if canon is not None:
                    rec = {"canon": canon, "tok": i, "line": t.line,
                           "open": open_stack[-1], "scope_end": end,
                           "end_line": toks[end].line if end < len(toks)
                           else t.line}
                    pending.append(rec)
                i = j
        elif t.text == "lock" and _is_call(toks, i):
            prev = _prev_tok(toks, i)
            if prev is not None and prev.text in (".", "->"):
                recv = toks[i - 2] if i >= 2 else None
                if recv is not None and recv.kind == "id":
                    canon, is_mutex = _canon_receiver(cg, fm, fn, recv.text,
                                                     MUTEX_TYPE)
                    if is_mutex:
                        rec = {"canon": canon, "tok": i, "line": t.line,
                               "open": open_stack[-1], "scope_end": end,
                               "end_line": toks[end].line if end < len(toks)
                               else t.line}
                        pending.append(rec)
        elif t.text in ("wait", "wait_for", "wait_until") \
                and _is_call(toks, i):
            prev = _prev_tok(toks, i)
            if prev is not None and prev.text in (".", "->"):
                recv = toks[i - 2] if i >= 2 else None
                if recv is not None and recv.kind == "id":
                    canon, is_cv = _canon_receiver(cg, fm, fn, recv.text,
                                                  CONDVAR_TYPE)
                    if is_cv:
                        waits.append((i, t.line, canon))
        i += 1
    # (canon, tok_idx, line, start_line, scope_end_tok, end_line)
    acqs = [(r["canon"], r["tok"], r["line"], r["line"], r["scope_end"],
             r["end_line"]) for r in pending]
    acqs.sort(key=lambda a: a[1])
    return acqs, waits


def _canon_mutex(cg, fm, fn, expr_toks):
    """Canonical name for the mutex expression inside MutexLock{...}."""
    ids = [t for t in expr_toks if t.kind == "id"]
    if not ids:
        return None
    name = ids[-1].text
    # receiver-qualified: obj.mu_ / obj->mu_ / Cls::mu_
    for k, t in enumerate(expr_toks):
        if t is ids[-1] and k >= 2 and expr_toks[k - 1].kind == "punct":
            p = expr_toks[k - 1].text
            r = expr_toks[k - 2]
            if p in (".", "->") and r.kind == "id":
                if r.text == "this":
                    return f"{fn.cls_name}::{name}"
                cls = cg._receiver_class(fm, fn, r.text)
                return f"{cls}::{name}" if cls else f"?::{name}"
            if p == "::" and r.kind == "id":
                return f"{r.text}::{name}"
    canon, _ = _canon_receiver(cg, fm, fn, name, MUTEX_TYPE)
    return canon


def _canon_receiver(cg, fm, fn, name, type_re):
    """(canonical name, type-matches) for a bare identifier: enclosing-class
    member, file global, then local."""
    if fn.cls_name:
        for c in cg._family(fn.cls_name):
            ci = cg.project.class_index.get(c)
            mem = ci.member(name) if ci is not None else None
            if mem is not None:
                return (f"{ci.name}::{name}",
                        bool(type_re.search(mem.type_text)))
    for gv in fm.globals:
        if gv.name == name:
            return f"::{name}", bool(type_re.search(gv.type_text))
    ty = fn.locals.get(name)
    if ty is not None:
        return (f"{fn.path}:{fn.name}:{name}", bool(type_re.search(ty)))
    return f"?::{name}", False


# ---------------------------------------------------------------------------
# arena family (DESIGN.md §13)
#
# arena-escape tracks arena-backed values — results of Arena::copy /
# alloc_chars / allocate (directly or through any function the summary fixed
# point proves returns arena memory), BufWriter::view() slices, and members
# reached through arena-resident nodes — on a three-point lattice per local:
#
#   arena-tainted   points into recyclable storage
#   stable/owning   deep-copied into owned storage (std::string, cat, build)
#   unknown         everything else; never reported
#
# and reports four escape shapes:
#   (a) tainted value stored into a view-typed field or namespace-scope
#       global whose owner outlives the arena (silence: MCS_ARENA_STABLE on
#       the field/global, MCS_OWNS_ARENA on the class);
#   (b) tainted value returned from a function that also ends the arena's
#       lifetime — opens an ArenaScope, leases from an ArenaPool, or calls
#       reset()/rewind() (silence: MCS_ARENA_STABLE on the function);
#   (c) use of a view after the operation that invalidated it: a BufWriter
#       append after view(), or any arena reset()/rewind() over a live
#       tainted local;
#   (d) thread-entry lambda capturing an arena handle, scratch slot, or
#       tainted view: arena memory is thread-confined (arena.h's
#       ThreadConfinementChecker enforces the same at runtime).

ARENA_ALLOC_METHODS = frozenset("allocate alloc_chars copy".split())
# BufWriter mutators that may reallocate the underlying string and so
# invalidate every view() previously taken from the same writer.
WRITER_MUTATORS = frozenset("put ch rep u64 i64 f need".split())
# Methods on a tainted receiver whose result still points into the arena.
VIEW_CARRYING = frozenset(
    "data c_str begin end front back substr".split())
# Heads of expressions that deep-copy their inputs: assigning or returning
# one of these kills taint even when the declared type is auto.
OWNING_HEADS = frozenset("string cat build to_string u64s i64s".split())

ARENA_SCOPE_TYPE = re.compile(r"\bArenaScope\b")
ARENA_WRITER_TYPE = re.compile(r"\bBufWriter\b")
ARENA_HANDLE_TYPE = re.compile(r"\b(Arena|ArenaPool|Lease)\b")
ARENA_VIEW_TYPE = re.compile(r"\b(Slice|string_view)\b|\*")
ARENA_OWNING_TYPE = re.compile(r"\b(string|NumStr)\b")


def _arena_family_member(project, cg, cls_name, name):
    """(ClassInfo, Member) for `name` looked up through the class family."""
    for c in cg._family(cls_name):
        ci = project.class_index.get(c)
        if ci is not None:
            mem = ci.member(name)
            if mem is not None:
                return ci, mem
    return None, None


def _arena_fn_stable(project, cg, fn) -> bool:
    """MCS_ARENA_STABLE on the definition or the in-class declaration."""
    if fn.arena_stable:
        return True
    if fn.cls_name:
        for c in cg._family(fn.cls_name):
            ci = project.class_index.get(c)
            if ci is None:
                continue
            for m in ci.method_named(fn.name):
                if m.arena_stable:
                    return True
    return False


def _arena_stmt_end(toks, i, end):
    """Token index of the `;` (or closing bracket) ending the statement."""
    depth = 0
    while i < end:
        t = toks[i]
        if t.kind == "punct":
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                if depth == 0:
                    return i
                depth -= 1
            elif t.text == ";" and depth == 0:
                return i
        i += 1
    return end


def _arena_owning_head(toks, lo, hi) -> bool:
    """True when the expression at [lo, hi) is headed by a deep copy:
    std::string{...}, cat(...), build(...), u64s/i64s, to_string."""
    k = lo
    while k < hi:
        t = toks[k]
        if t.kind == "id":
            if t.text in ("std", "sim", "mcs"):
                k += 1
                continue
            return t.text in OWNING_HEADS
        if t.kind == "punct" and t.text == "::":
            k += 1
            continue
        return False
    return False


class _ArenaState:
    """Per-function result of _arena_flow."""

    __slots__ = ("returns_tainted", "findings", "tainted", "handles")

    def __init__(self):
        self.returns_tainted = False
        self.findings = []  # [(line, message)]
        self.tainted = {}  # local -> first-taint line
        self.handles = {}  # local -> 'arena' | 'scope' | 'writer' | 'scratch'


def _arena_flow(project, cg, fm, fn, returns_arena, globals_by_name,
                report) -> _ArenaState:
    """Single linear walk of fn's body tokens. With report=False only the
    returns_tainted summary bit is computed (the fixed-point phase); with
    report=True escape findings are collected too."""
    st = _ArenaState()
    toks = fm.tokens
    start, end = fn.body
    tainted = st.tainted
    handles = st.handles
    views = {}  # view local -> BufWriter local it was taken from
    killed = {}  # local -> (line, why): invalidated, use = finding (c)
    recycle = None  # (line, why) evidence this fn ends an arena lifetime

    for name, ty in fn.locals.items():
        if ARENA_SCOPE_TYPE.search(ty):
            handles[name] = "scope"
            recycle = recycle or (fn.line, f"opens ArenaScope '{name}'")
        elif ARENA_WRITER_TYPE.search(ty):
            handles[name] = "writer"
        elif ARENA_HANDLE_TYPE.search(ty):
            handles[name] = "arena"
            if "Lease" in ty:
                recycle = recycle or (fn.line,
                                      f"holds pool lease '{name}'")

    def span_tainted(lo, hi):
        """Does the expression at [lo, hi) evaluate to arena-backed memory?"""
        if _arena_owning_head(toks, lo, hi):
            return False
        k = lo
        while k < hi:
            t = toks[k]
            if t.kind != "id":
                k += 1
                continue
            prev = _prev_tok(toks, k)
            accessed = (prev is not None and prev.kind == "punct"
                        and prev.text in (".", "->", "::"))
            if _is_call(toks, k):
                if t.text in ARENA_ALLOC_METHODS and accessed \
                        and prev.text in (".", "->") \
                        and toks[k - 2].kind == "id" \
                        and handles.get(toks[k - 2].text) == "arena":
                    return True
                if not (accessed and prev.text == "::"
                        and toks[k - 2].text == "std"):
                    for callee in cg._resolve(fm, fn, toks, k,
                                              allow_fallback=False):
                        if callee in returns_arena:
                            return True
            elif not accessed and t.text in tainted:
                # v.size() yields a scalar, not the pointer; v.data() (and
                # friends) still carries it. Bare v / v->field carries it.
                nxt = _next_tok(toks, k)
                if nxt is not None and nxt.kind == "punct" \
                        and nxt.text in (".", "->") \
                        and k + 2 < hi and toks[k + 2].kind == "id" \
                        and _is_call(toks, k + 2) \
                        and toks[k + 2].text not in VIEW_CARRYING:
                    k += 1
                    continue
                return True
            k += 1
        return False

    def span_view_writer(lo, hi):
        """BufWriter local whose .view() heads the expression, else None."""
        k = lo
        while k < hi:
            t = toks[k]
            if t.kind == "id" and t.text == "view" and _is_call(toks, k):
                prev = _prev_tok(toks, k)
                if prev is not None and prev.kind == "punct" \
                        and prev.text in (".", "->") \
                        and toks[k - 2].kind == "id" \
                        and handles.get(toks[k - 2].text) == "writer":
                    return toks[k - 2].text
            k += 1
        return None

    def span_acquires_lease(lo, hi):
        """True for `pool.acquire()` where pool is ArenaPool-typed."""
        k = lo
        while k < hi:
            t = toks[k]
            if t.kind == "id" and t.text == "acquire" and _is_call(toks, k):
                prev = _prev_tok(toks, k)
                if prev is not None and prev.kind == "punct" \
                        and prev.text in (".", "->") \
                        and toks[k - 2].kind == "id":
                    recv = toks[k - 2].text
                    ty = fn.locals.get(recv, "")
                    if not ty and fn.cls_name:
                        _ci, mem = _arena_family_member(project, cg,
                                                        fn.cls_name, recv)
                        ty = mem.type_text if mem is not None else ""
                    if not ty:
                        gv = globals_by_name.get(recv)
                        ty = gv.type_text if gv is not None else ""
                    if "ArenaPool" in ty:
                        return True
            k += 1
        return False

    def span_has_scratch(lo, hi):
        k = lo
        while k < hi:
            if toks[k].kind == "id" and toks[k].text == "scratch" \
                    and _is_call(toks, k):
                return True
            k += 1
        return False

    def decl_type(name):
        ty = fn.locals.get(name)
        if ty is None and fn.cls_name:
            _ci, mem = _arena_family_member(project, cg, fn.cls_name, name)
            if mem is not None:
                ty = mem.type_text
        return ty or ""

    i = start + 1
    while i < end:
        t = toks[i]
        if t.kind != "id":
            i += 1
            continue
        prev = _prev_tok(toks, i)
        nxt = _next_tok(toks, i)
        accessed = (prev is not None and prev.kind == "punct"
                    and prev.text in (".", "->", "::"))

        # --- returns: summary bit + rule (b) -----------------------------
        if t.text == "return" and not accessed:
            lo = i + 1
            hi = _arena_stmt_end(toks, lo, end)
            if hi > lo and span_tainted(lo, hi):
                st.returns_tainted = True
                if report and recycle is not None \
                        and not _arena_fn_stable(project, cg, fn):
                    qual = (f"{fn.cls_name}::{fn.name}" if fn.cls_name
                            else fn.name)
                    st.findings.append((t.line, (
                        f"'{qual}' returns an arena-backed value but "
                        f"{recycle[1]} (line {recycle[0]}): the storage is "
                        f"recycled before the caller can read it; return an "
                        f"owned copy (std::string/cat/build) or annotate "
                        f"the function MCS_ARENA_STABLE (DESIGN.md §13)")))
            i += 1
            continue

        # --- assignments: `<lvalue> = <expr>` ----------------------------
        if nxt is not None and nxt.kind == "punct" and nxt.text == "=":
            lhs = t.text
            lo = i + 2
            hi = _arena_stmt_end(toks, lo, end)
            rhs_tainted = span_tainted(lo, hi)

            if prev is not None and prev.kind == "punct" \
                    and prev.text in (".", "->"):
                # member store through a receiver chain: obj.field = ...
                if report and rhs_tainted:
                    j = i - 1
                    while j >= 1 and toks[j].kind == "punct" \
                            and toks[j].text in (".", "->"):
                        j -= 2
                    head = toks[j + 1] if toks[j + 1].kind == "id" else None
                    head_name = head.text if head is not None else None
                    owner = cg._chain_receiver_class(fm, fn, toks, i)
                    # Stores into arena-resident nodes die with the arena
                    # themselves: a tainted receiver head is not an escape.
                    if head_name not in tainted and owner is not None:
                        ci, mem = _arena_family_member(project, cg, owner,
                                                       lhs)
                        if mem is not None and not mem.arena_stable \
                                and not (ci is not None and ci.owns_arena) \
                                and ARENA_VIEW_TYPE.search(mem.type_text):
                            st.findings.append((t.line, (
                                f"arena-backed view stored into field "
                                f"'{owner}::{lhs}', whose owner outlives "
                                f"the arena; copy into owned storage, or "
                                f"annotate the field MCS_ARENA_STABLE / "
                                f"the class MCS_OWNS_ARENA "
                                f"(DESIGN.md §13)")))
                i += 1
                continue

            if lhs in fn.locals:
                ty = fn.locals.get(lhs, "")
                if span_acquires_lease(lo, hi):
                    handles[lhs] = "arena"
                    recycle = recycle or (t.line,
                                          f"leases arena '{lhs}' from a "
                                          f"pool")
                elif span_has_scratch(lo, hi):
                    handles[lhs] = "scratch"
                w = span_view_writer(lo, hi)
                if w is not None and not (ARENA_VIEW_TYPE.search(ty)
                                          or re.search(r"\bauto\b", ty)):
                    # view() consumed inside the RHS (a call argument); the
                    # scalar/owned result does not hold the pointer.
                    w = None
                if w is not None:
                    views[lhs] = w
                    tainted.setdefault(lhs, t.line)
                    killed.pop(lhs, None)
                elif rhs_tainted and not ARENA_OWNING_TYPE.search(ty):
                    tainted.setdefault(lhs, t.line)
                    killed.pop(lhs, None)
                else:
                    # reassignment from a stable source heals the local
                    tainted.pop(lhs, None)
                    views.pop(lhs, None)
                    killed.pop(lhs, None)
                i += 1
                continue

            if fn.cls_name:
                ci, mem = _arena_family_member(project, cg, fn.cls_name,
                                               lhs)
                if mem is not None:
                    if report and rhs_tainted and not mem.arena_stable \
                            and not (ci is not None and ci.owns_arena) \
                            and ARENA_VIEW_TYPE.search(mem.type_text):
                        st.findings.append((t.line, (
                            f"arena-backed view stored into field "
                            f"'{ci.name}::{lhs}', whose owner outlives the "
                            f"arena; copy into owned storage, or annotate "
                            f"the field MCS_ARENA_STABLE / the class "
                            f"MCS_OWNS_ARENA (DESIGN.md §13)")))
                    i += 1
                    continue

            gv = globals_by_name.get(lhs)
            if gv is not None and report and rhs_tainted \
                    and not gv.arena_stable \
                    and ARENA_VIEW_TYPE.search(gv.type_text):
                st.findings.append((t.line, (
                    f"arena-backed view stored into global '{lhs}': the "
                    f"global outlives every arena; copy into owned storage "
                    f"or annotate it MCS_ARENA_STABLE (DESIGN.md §13)")))
            i += 1
            continue

        # --- calls: invalidation events ----------------------------------
        if _is_call(toks, i) and prev is not None and prev.kind == "punct" \
                and prev.text in (".", "->") and toks[i - 2].kind == "id":
            recv = toks[i - 2].text
            kind = handles.get(recv)
            if t.text in ("reset", "rewind") and kind == "arena":
                recycle = recycle or (t.line, f"calls {recv}.{t.text}()")
                for name in list(tainted):
                    killed.setdefault(name,
                                      (t.line, f"{recv}.{t.text}()"))
            elif t.text in WRITER_MUTATORS and kind == "writer":
                for v, w in views.items():
                    if w == recv:
                        killed.setdefault(v, (t.line,
                                              f"{recv}.{t.text}(...)"))

        # --- rule (c): use of an invalidated view ------------------------
        if report and t.text in killed and not accessed \
                and not (nxt is not None and nxt.kind == "punct"
                         and nxt.text == "="):
            kline, why = killed.pop(t.text)
            st.findings.append((t.line, (
                f"'{t.text}' points into storage invalidated by {why} "
                f"(line {kline}); re-take the view after the mutation or "
                f"copy it into owned storage first (DESIGN.md §13)")))
        i += 1

    return st


def check_arena_escape(project: Project, out):
    cg = project.callgraph()

    globals_by_name = {}
    for fm in project.files:
        for gv in fm.globals:
            globals_by_name.setdefault(gv.name, gv)

    # Seed: Arena's own allocators return arena memory by definition.
    returns_arena = set()
    for m in ARENA_ALLOC_METHODS:
        returns_arena.update(cg.by_qual.get(("Arena", m), ()))

    # Fixed point on the returns-arena summary: a function that returns a
    # tainted value is itself a taint source for its callers.
    changed = True
    rounds = 0
    while changed and rounds < 20:
        changed = False
        rounds += 1
        for fm in project.files:
            for fn in fm.functions:
                if fn in returns_arena:
                    continue
                st = _arena_flow(project, cg, fm, fn, returns_arena,
                                 globals_by_name, report=False)
                if st.returns_tainted:
                    returns_arena.add(fn)
                    changed = True

    for fm in project.files:
        flows = {}
        for fn in fm.functions:
            st = _arena_flow(project, cg, fm, fn, returns_arena,
                             globals_by_name, report=True)
            flows[fn] = st
            for line, msg in st.findings:
                _emit(out, project, fm, line, "arena-escape", msg)

        # rule (d): thread-entry lambdas must not capture arena memory.
        for lam in fm.lambdas:
            if not _is_thread_entry(lam) or lam.func is None:
                continue
            st = flows.get(lam.func)
            if st is None:
                continue
            confined = {}
            for name, kind in st.handles.items():
                if kind in ("arena", "scope"):
                    confined[name] = "arena handle"
                elif kind == "scratch":
                    confined[name] = "thread-local scratch slot"
            for name in st.tainted:
                confined.setdefault(name, "arena-backed view")
            caught = set()
            for kind, name in lam.captures:
                if kind in ("ref", "val") and name in confined:
                    caught.add(name)
            if any(kind in ("default_ref", "default_val")
                   for kind, _name in lam.captures):
                s, e = lam.body
                k = s + 1
                while k < e:
                    tt = fm.tokens[k]
                    if tt.kind == "id" and tt.text in confined \
                            and not _is_member_access(fm.tokens, k):
                        caught.add(tt.text)
                    k += 1
            for name in sorted(caught):
                _emit(out, project, fm, lam.line, "arena-escape",
                      f"thread-entry lambda captures {confined[name]} "
                      f"'{name}': arenas, leases, and scratch slots are "
                      f"thread-confined (DESIGN.md §13); hand the thread "
                      f"an owned copy instead")


PROJECT_CHECK_FNS = {
    "hotpath-alloc": check_hotpath_alloc,
    "shard-escape": check_shard_escape,
    "lock-order": check_lock_order,
    "arena-escape": check_arena_escape,
}


# ---------------------------------------------------------------------------

CHECK_FNS = {
    "wallclock": check_wallclock,
    "rng": check_rng,
    "getenv": check_getenv,
    "unordered-sink": check_unordered_sink,
    "float-accum": check_float_accum,
    "uninit-pod": check_uninit_pod,
    "unguarded-field": check_unguarded_field,
    "sim-escape": check_sim_escape,
    "missing-contract": check_missing_contract,
}


def run_checks(project: Project, checks) -> list:
    findings: list[Finding] = []
    _LINE_CACHE.clear()
    per_file = [c for c in checks if c in CHECK_FNS]
    for fm in project.files:
        for name in per_file:
            CHECK_FNS[name](project, fm, findings)
    for name in checks:
        fnc = PROJECT_CHECK_FNS.get(name)
        if fnc is not None:
            fnc(project, findings)
    findings.sort(key=lambda f: f.sort_key())
    return findings


def resolve_check_names(spec: str) -> list:
    """Expand a comma list of check or family names; '*'/'all' = everything."""
    if spec in ("*", "all", ""):
        return list(ALL_CHECKS)
    out = []
    for name in spec.split(","):
        name = name.strip()
        if not name:
            continue
        if name in FAMILIES:
            out.extend(FAMILIES[name])
        elif name in ALL_CHECKS:
            out.append(name)
        else:
            raise ValueError(f"unknown check or family: {name!r}")
    seen = set()
    uniq = []
    for c in out:
        if c not in seen:
            seen.add(c)
            uniq.append(c)
    return uniq
