"""Token/structural frontend: lowers a C++ file into the shared model
without libclang. Conservative by design — when a construct can't be parsed
with confidence it records nothing, so checks prefer false negatives over
false positives (the committed baseline catches drift either way).
"""

from __future__ import annotations

import re
from pathlib import Path

from lexer import lex
from model import (ClassInfo, FileModel, FunctionDef, GlobalVar, Lambda,
                   Member, Method, RangeFor)

KEYWORDS = frozenset(
    "if else for while do switch case default break continue return goto "
    "new delete throw try catch sizeof alignof typeid static_cast "
    "dynamic_cast const_cast reinterpret_cast co_await co_return co_yield "
    "using typedef namespace template typename operator".split())

TYPE_QUALIFIERS = frozenset(
    "const constexpr static mutable volatile inline extern thread_local "
    "unsigned signed struct class typename register".split())

ATTR_MACROS = frozenset(
    "MCS_GUARDED_BY MCS_PT_GUARDED_BY MCS_REQUIRES MCS_REQUIRES_SHARED "
    "MCS_ACQUIRE MCS_RELEASE MCS_TRY_ACQUIRE MCS_EXCLUDES MCS_CAPABILITY "
    "MCS_ACQUIRED_BEFORE MCS_ACQUIRED_AFTER MCS_RETURN_CAPABILITY "
    "MCS_SCOPED_CAPABILITY MCS_NO_THREAD_SAFETY_ANALYSIS "
    "MCS_EXTERNALLY_SERIALIZED MCS_ARENA_STABLE MCS_OWNS_ARENA "
    "alignas noexcept final override".split())

ALLOW_RE = re.compile(
    r"(?:mcs-analyze|detlint):\s*allow\(([a-zA-Z0-9_,\- ]+)\)")


def build_file_model(path: Path, rel: str, text: str) -> FileModel:
    lexed = lex(text)
    toks = lexed.tokens
    fm = FileModel(path=path, rel=rel, tokens=toks)

    # Suppressions: a comment allows its own line; a comment on a line with
    # no code allows the next code line.
    for line, comment in lexed.comments:
        m = ALLOW_RE.search(comment)
        if not m:
            continue
        checks = {c.strip() for c in m.group(1).split(",") if c.strip()}
        target = line if line in lexed.code_lines else line + 1
        fm.suppressions.setdefault(target, set()).update(checks)

    match = _match_braces(toks)
    _Parser(fm, match).parse()
    return fm


def _match_braces(toks):
    match = {}
    stack = []
    for i, t in enumerate(toks):
        if t.kind != "punct":
            continue
        if t.text == "{":
            stack.append(i)
        elif t.text == "}" and stack:
            match[stack.pop()] = i
    return match


def _skip_balanced(toks, i, open_ch, close_ch):
    """i points at open_ch; returns index past the matching close_ch."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "punct":
            if t.text == open_ch:
                depth += 1
            elif t.text == close_ch:
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def _type_text(tokens) -> str:
    return " ".join(t.text for t in tokens)


class _Parser:
    def __init__(self, fm: FileModel, match):
        self.fm = fm
        self.toks = fm.tokens
        self.match = match
        self.n = len(self.toks)

    def parse(self):
        self._scan_region(0, self.n, enclosing_class=None)
        # Loops and lambdas are found per function body once functions exist.
        for fn in self.fm.functions:
            self._scan_body(fn)
        for ci in self.fm.classes:
            for m in ci.methods:
                if m.body is not None:
                    fn = FunctionDef(
                        name=m.name, cls_name=ci.name, line=m.line,
                        path=self.fm.rel, body=m.body, is_const=m.is_const,
                        externally_serialized=m.externally_serialized,
                        arena_stable=m.arena_stable,
                        params=self._inline_params(m))
                    self.fm.functions.append(fn)
                    self._scan_body(fn)

    def _inline_params(self, m):
        """Parameters of an inline method body: the `(...)` right after the
        method name, searched backwards from the body brace (skips over
        ctor init lists and trailing specifiers)."""
        start = m.body[0]
        j = start - 1
        lo = max(0, start - 400)
        while j > lo:
            t = self.toks[j]
            if t.kind == "id" and t.text == m.name and j + 1 < self.n \
                    and self.toks[j + 1].kind == "punct" \
                    and self.toks[j + 1].text == "(":
                close = _skip_balanced(self.toks, j + 1, "(", ")") - 1
                if j + 1 < close < start:
                    return _parse_params(self.toks[j + 2 : close])
                return []
            j -= 1
        return []

    # ---- namespace/class region scanning --------------------------------

    def _scan_region(self, i, end, enclosing_class):
        """Scan a namespace-scope token region for classes, function
        definitions, and variable definitions (globals); recurses into
        namespaces, skips function bodies."""
        toks = self.toks
        buf: list = []  # statement buffer for namespace-scope variable decls
        while i < end:
            t = toks[i]
            if t.kind == "pp":
                i += 1
                continue
            if t.kind == "id" and t.text == "namespace":
                j = i + 1
                while j < end and not (toks[j].kind == "punct"
                                       and toks[j].text in "{;"):
                    j += 1
                if j < end and toks[j].text == "{":
                    body_end = self.match.get(j, end)
                    self._scan_region(j + 1, body_end, enclosing_class)
                    i = body_end + 1
                else:
                    i = j + 1
                buf = []
                continue
            if t.kind == "id" and t.text in ("struct", "class"):
                prev = toks[i - 1] if i > 0 else None
                if prev is not None and prev.kind == "id" and prev.text == "enum":
                    i += 1
                    continue
                nxt = self._parse_class(i, end)
                if nxt is not None:
                    i = nxt
                    buf = []
                    continue
            if t.kind == "id" and t.text == "enum":
                # skip enum { ... } bodies so enumerators aren't members
                j = i + 1
                while j < end and not (toks[j].kind == "punct"
                                       and toks[j].text in "{;"):
                    j += 1
                if j < end and toks[j].text == "{":
                    i = self.match.get(j, end) + 1
                else:
                    i = j + 1
                buf = []
                continue
            # Function definition at namespace scope?
            if t.kind == "punct" and t.text == "(":
                nxt = self._try_function_def(i, end)
                if nxt is not None:
                    i = nxt
                    buf = []
                    continue
            if t.kind == "punct" and t.text == "{":
                if any(x.kind == "punct" and x.text == "=" for x in buf):
                    # brace initializer on a variable: consume, wait for ';'
                    i = self.match.get(i, end) + 1
                    continue
                # stray brace at namespace scope (aggregate initializer):
                i = self.match.get(i, end) + 1
                buf = []
                continue
            if t.kind == "punct" and t.text == ";":
                self._add_global(buf)
                buf = []
                i += 1
                continue
            buf.append(t)
            i += 1

    _GLOBAL_HEAD_BAN = frozenset(
        "using typedef extern template friend static_assert return goto "
        "operator public private protected namespace".split())

    def _add_global(self, buf):
        """Record a namespace-scope variable definition from a statement
        buffer (tokens up to ';'). Conservative: anything with a top-level
        '(' (function decls, call-style init) or a qualified name
        (out-of-class static member defs) records nothing."""
        if len(buf) < 2 or buf[0].kind != "id" \
                or buf[0].text in self._GLOBAL_HEAD_BAN:
            return
        if any(t.kind == "punct" and t.text == "(" for t in buf):
            return
        decl = buf
        for k, t in enumerate(decl):  # initializer: cut at top-level '='
            if t.kind == "punct" and t.text == "=":
                decl = decl[:k]
                break
        for k, t in enumerate(decl):  # array suffix
            if t.kind == "punct" and t.text == "[":
                decl = decl[:k]
                break
        name_idx = None
        for k in range(len(decl) - 1, -1, -1):
            if decl[k].kind == "id" and decl[k].text not in ATTR_MACROS:
                name_idx = k
                break
        if name_idx is None or name_idx == 0:
            return
        prev = decl[name_idx - 1]
        if prev.kind == "punct" and prev.text == "::":
            return  # out-of-class static member definition; modeled as Member
        type_toks = decl[:name_idx]
        if not any(t.kind == "id" and t.text not in TYPE_QUALIFIERS
                   for t in type_toks):
            return
        words = {t.text for t in type_toks if t.kind == "id"}
        self.fm.globals.append(GlobalVar(
            name=decl[name_idx].text,
            type_text=_type_text(type_toks),
            line=decl[name_idx].line,
            path=self.fm.rel,
            is_const="const" in words or "constexpr" in words,
            is_thread_local="thread_local" in words,
            is_static="static" in words,
            arena_stable=any(t.kind == "id" and t.text == "MCS_ARENA_STABLE"
                             for t in buf),
        ))

    def _parse_class(self, i, end):
        """i points at struct/class. Returns index past the class (or None
        if this is not a definition)."""
        toks = self.toks
        keyword = toks[i].text
        j = i + 1
        name = None
        bases = []
        owns_arena = False
        in_bases = False
        while j < end:
            t = toks[j]
            if t.kind == "punct":
                if t.text == ";":  # forward declaration
                    return j + 1
                if t.text == "{":
                    break
                if t.text == ":" and name is not None:
                    in_bases = True
                    j += 1
                    continue
                if t.text in "<([":
                    close = {"<": ">", "(": ")", "[": "]"}[t.text]
                    j = _skip_balanced(toks, j, t.text, close)
                    continue
                if t.text in ("=", ")" , ","):  # `struct X*` param etc.
                    if t.text == "," and in_bases:
                        j += 1
                        continue
                    return None
            elif t.kind == "id":
                if in_bases:
                    if t.text not in ("public", "protected", "private",
                                      "virtual") and t.text not in ATTR_MACROS:
                        prev = toks[j - 1]
                        if bases and prev.kind == "punct" and prev.text == "::":
                            bases[-1] = t.text  # keep last id of `ns::Base`
                        else:
                            bases.append(t.text)
                    j += 1
                    continue
                if t.text == "final" or t.text in ATTR_MACROS:
                    if t.text == "MCS_OWNS_ARENA":
                        owns_arena = True
                    j += 1
                    continue
                if name is None and toks[j + 1].text != "(" if j + 1 < end else True:
                    # first plain identifier not followed by '(' is the name
                    if j + 1 < end and toks[j + 1].kind == "punct" \
                            and toks[j + 1].text == "(":
                        j = _skip_balanced(toks, j + 1, "(", ")")
                        continue
                    name = t.text
            j += 1
        if j >= end or name is None:
            return None
        body_open = j
        body_end = self.match.get(body_open)
        if body_end is None:
            return None
        ci = ClassInfo(name=name, line=toks[i].line, path=self.fm.rel,
                       bases=bases, owns_arena=owns_arena)
        self.fm.classes.append(ci)
        default_access = "public" if keyword == "struct" else "private"
        self._parse_class_body(ci, body_open + 1, body_end, default_access)
        return body_end + 1

    def _parse_class_body(self, ci, start, end, access):
        toks = self.toks
        i = start
        buf_start = i
        while i < end:
            t = toks[i]
            if t.kind == "pp":
                i += 1
                continue
            if t.kind == "id" and t.text in ("public", "protected", "private") \
                    and i + 1 < end and toks[i + 1].kind == "punct" \
                    and toks[i + 1].text == ":":
                access = t.text
                i += 2
                buf_start = i
                continue
            if t.kind == "id" and t.text in ("struct", "class") and \
                    not self._buffer_has_paren(buf_start, i):
                prev = toks[i - 1] if i > 0 else None
                if not (prev and prev.kind == "id" and prev.text == "enum"):
                    nxt = self._parse_class(i, end)
                    if nxt is not None:
                        i = nxt
                        buf_start = i
                        continue
            if t.kind == "id" and t.text == "enum":
                j = i + 1
                while j < end and not (toks[j].kind == "punct"
                                       and toks[j].text in "{;"):
                    j += 1
                if j < end and toks[j].text == "{":
                    i = self.match.get(j, end) + 1
                    while i < end and not (toks[i].kind == "punct"
                                           and toks[i].text == ";"):
                        i += 1
                    i += 1
                else:
                    i = j + 1
                buf_start = i
                continue
            if t.kind == "punct" and t.text == "<":
                # probable template argument list in a declaration
                j = self._skip_angles(i, end)
                if j is not None:
                    i = j
                    continue
                i += 1
                continue
            if t.kind == "punct" and t.text == "(":
                i = _skip_balanced(toks, i, "(", ")")
                continue
            if t.kind == "punct" and t.text == "{":
                decl = toks[buf_start:i]
                body_end = self.match.get(i, end)
                if self._decl_is_function(decl):
                    self._add_method(ci, decl, access, body=(i, body_end))
                    i = body_end + 1
                    # optional trailing ';'
                    if i < end and toks[i].kind == "punct" \
                            and toks[i].text == ";":
                        i += 1
                    buf_start = i
                    continue
                # brace initializer on a member: consume to ';'
                i = body_end + 1
                while i < end and not (toks[i].kind == "punct"
                                       and toks[i].text == ";"):
                    if toks[i].kind == "punct" and toks[i].text == "{":
                        i = self.match.get(i, end)
                    i += 1
                self._add_member(ci, decl, has_init=True)
                i += 1
                buf_start = i
                continue
            if t.kind == "punct" and t.text == ";":
                decl = toks[buf_start:i]
                if decl:
                    if self._decl_is_function(decl):
                        self._add_method(ci, decl, access, body=None)
                    else:
                        has_init = any(
                            d.kind == "punct" and d.text == "=" for d in decl)
                        self._add_member(ci, decl, has_init=has_init)
                i += 1
                buf_start = i
                continue
            i += 1

    def _buffer_has_paren(self, start, end):
        return any(t.kind == "punct" and t.text == "(" for t in
                   self.toks[start:end])

    def _skip_angles(self, i, end):
        """Heuristic angle-bracket skip for declaration contexts: i points
        at '<' directly after an identifier. Returns index past '>' or None."""
        toks = self.toks
        prev = toks[i - 1] if i > 0 else None
        if prev is None or prev.kind not in ("id",):
            return None
        depth = 0
        j = i
        while j < end:
            t = toks[j]
            if t.kind == "punct":
                if t.text == "<":
                    depth += 1
                elif t.text == ">":
                    depth -= 1
                    if depth == 0:
                        return j + 1
                elif t.text == ">>":
                    depth -= 2
                    if depth <= 0:
                        return j + 1
                elif t.text in ";{":
                    return None  # not a template list after all
                elif t.text == "(":
                    j = _skip_balanced(toks, j, "(", ")")
                    continue
            j += 1
        return None

    def _decl_is_function(self, decl) -> bool:
        """A declaration buffer is a function iff it has a '(' at top level
        (outside template angles)."""
        return self._top_level_paren(decl) is not None

    @staticmethod
    def _top_level_paren(decl):
        angle = 0
        for k, t in enumerate(decl):
            if t.kind != "punct":
                continue
            if t.text == "<" and k > 0 and decl[k - 1].kind == "id":
                angle += 1
            elif t.text == ">" and angle > 0:
                angle -= 1
            elif t.text == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif t.text == "(" and angle == 0:
                return k
            elif t.text == "(":
                # inside angles: skip balanced so `decltype(x)` nests fine
                continue
        return None

    def _add_method(self, ci, decl, access, body):
        paren = self._top_level_paren(decl)
        if paren is None or paren == 0:
            return
        name_tok = decl[paren - 1]
        if name_tok.kind != "id":
            return
        name = name_tok.text
        is_special = False
        if name == ci.name or (paren >= 2 and decl[paren - 2].text == "~"):
            is_special = True  # ctor/dtor
        if any(t.kind == "id" and t.text == "operator" for t in decl):
            is_special = True
        close = None
        depth = 0
        for k in range(paren, len(decl)):
            if decl[k].kind == "punct":
                if decl[k].text == "(":
                    depth += 1
                elif decl[k].text == ")":
                    depth -= 1
                    if depth == 0:
                        close = k
                        break
        tail = decl[close + 1:] if close is not None else []
        is_const = any(t.kind == "id" and t.text == "const" for t in tail)
        ext_ser = any(t.kind == "id" and t.text == "MCS_EXTERNALLY_SERIALIZED"
                      for t in tail)
        arena_stable = any(t.kind == "id" and t.text == "MCS_ARENA_STABLE"
                           for t in decl)
        if any(t.kind == "id" and t.text in ("default", "delete")
               for t in tail):
            is_special = True
        is_static = any(t.kind == "id" and t.text == "static"
                        for t in decl[:paren - 1])
        ci.methods.append(Method(
            name=name, line=name_tok.line, access=access, is_const=is_const,
            is_static=is_static, is_special=is_special,
            externally_serialized=ext_ser, arena_stable=arena_stable,
            body=body))

    def _add_member(self, ci, decl, has_init):
        toks = list(decl)
        if not toks:
            return
        head = toks[0]
        if head.kind == "id" and head.text in (
                "using", "typedef", "friend", "static_assert", "template",
                "public", "protected", "private", "operator"):
            return
        guarded_by = None
        # strip MCS_* attribute macro + its args out of the decl
        stripped = []
        k = 0
        while k < len(toks):
            t = toks[k]
            if t.kind == "id" and t.text in ("MCS_GUARDED_BY",
                                             "MCS_PT_GUARDED_BY"):
                if k + 1 < len(toks) and toks[k + 1].text == "(":
                    j = _skip_balanced(toks, k + 1, "(", ")")
                    guarded_by = " ".join(x.text for x in toks[k + 2 : j - 1])
                    k = j
                    continue
            stripped.append(t)
            k += 1
        toks = stripped
        # initializer: cut at top-level '='
        init_cut = None
        for k, t in enumerate(toks):
            if t.kind == "punct" and t.text == "=":
                init_cut = k
                has_init = True
                break
        decl_part = toks[:init_cut] if init_cut is not None else toks
        # bitfield: cut at ':' (but not '::')
        for k, t in enumerate(decl_part):
            if t.kind == "punct" and t.text == ":":
                decl_part = decl_part[:k]
                break
        # array suffix: cut at '['
        for k, t in enumerate(decl_part):
            if t.kind == "punct" and t.text == "[":
                decl_part = decl_part[:k]
                break
        # name = last identifier
        name_idx = None
        for k in range(len(decl_part) - 1, -1, -1):
            if decl_part[k].kind == "id" and \
                    decl_part[k].text not in ATTR_MACROS:
                name_idx = k
                break
        if name_idx is None or name_idx == 0:
            return
        name_tok = decl_part[name_idx]
        type_toks = decl_part[:name_idx]
        if not any(t.kind == "id" for t in type_toks):
            return
        words = {t.text for t in type_toks if t.kind == "id"}
        ci.members[name_tok.text] = Member(
            name=name_tok.text,
            type_text=_type_text(type_toks),
            line=name_tok.line,
            has_init=has_init,
            guarded_by=guarded_by,
            is_static="static" in words,
            is_mutable="mutable" in words,
            is_thread_local="thread_local" in words,
            is_const="const" in words or "constexpr" in words,
            arena_stable=any(t.kind == "id" and t.text == "MCS_ARENA_STABLE"
                             for t in decl),
        )

    # ---- function definitions at namespace scope ------------------------

    def _try_function_def(self, paren_i, end):
        """paren_i points at '(' at namespace scope. Recognizes
        `[qual::]name(params) [const] [...] [: init-list] { body }` and
        records it. Returns index past the body, or None."""
        toks = self.toks
        name_i = paren_i - 1
        if name_i < 0 or toks[name_i].kind != "id":
            return None
        if toks[name_i].text in KEYWORDS or toks[name_i].text in ATTR_MACROS:
            return None
        # qualified chain backwards: id (:: id)*
        chain = [toks[name_i].text]
        k = name_i - 1
        while k - 1 >= 0 and toks[k].kind == "punct" and toks[k].text == "::" \
                and toks[k - 1].kind == "id":
            chain.append(toks[k - 1].text)
            k -= 2
        chain.reverse()
        # return type must exist before the chain (or the chain is a ctor
        # `Class::Class`); otherwise this is a call statement — but calls
        # don't appear at namespace scope, so accept either way.
        close = _skip_balanced(toks, paren_i, "(", ")") - 1
        if close >= end or toks[close].text != ")":
            return None
        params_toks = toks[paren_i + 1 : close]
        j = close + 1
        is_const = False
        ext_ser = False
        arena_stable = False
        # tail: const/noexcept/attr-macros(+args)/-> trailing return
        while j < end:
            t = toks[j]
            if t.kind == "id" and t.text == "const":
                is_const = True
                j += 1
                continue
            if t.kind == "id" and t.text == "MCS_EXTERNALLY_SERIALIZED":
                ext_ser = True
                j += 1
                continue
            if t.kind == "id" and t.text == "MCS_ARENA_STABLE":
                arena_stable = True
                j += 1
                continue
            if t.kind == "id" and (t.text in ATTR_MACROS
                                   or t.text.startswith("MCS_")):
                j += 1
                if j < end and toks[j].kind == "punct" and toks[j].text == "(":
                    j = _skip_balanced(toks, j, "(", ")")
                continue
            if t.kind == "punct" and t.text == "->":
                j += 1
                while j < end and not (toks[j].kind == "punct"
                                       and toks[j].text in "{;:"):
                    if toks[j].kind == "punct" and toks[j].text == "(":
                        j = _skip_balanced(toks, j, "(", ")")
                        continue
                    j += 1
                continue
            break
        if j >= end:
            return None
        t = toks[j]
        if t.kind == "punct" and t.text == ":":
            # ctor init list: id + balanced ()/{} groups, comma separated
            j += 1
            while j < end:
                while j < end and not (toks[j].kind == "punct"
                                       and toks[j].text in "({"):
                    if toks[j].kind == "punct" and toks[j].text == ";":
                        return None
                    j += 1
                if j >= end:
                    return None
                opener = toks[j].text
                j = _skip_balanced(toks, j, opener,
                                   ")" if opener == "(" else "}")
                if j < end and toks[j].kind == "punct" and toks[j].text == ",":
                    j += 1
                    continue
                break
            if j >= end or not (toks[j].kind == "punct"
                                and toks[j].text == "{"):
                return None
            t = toks[j]
        if not (t.kind == "punct" and t.text == "{"):
            return None
        body_end = self.match.get(j)
        if body_end is None:
            return None
        fn = FunctionDef(
            name=chain[-1],
            cls_name=chain[-2] if len(chain) >= 2 else None,
            line=toks[name_i].line,
            path=self.fm.rel,
            body=(j, body_end),
            is_const=is_const,
            externally_serialized=ext_ser,
            arena_stable=arena_stable,
            params=_parse_params(params_toks),
        )
        self.fm.functions.append(fn)
        return body_end + 1

    # ---- body scanning: locals, range-fors, lambdas ----------------------

    def _scan_body(self, fn: FunctionDef):
        toks = self.toks
        start, end = fn.body
        fn.locals.update(_parse_locals(toks, start + 1, end))
        for tt, nm in fn.params:
            if nm:
                fn.locals.setdefault(nm, tt)
        i = start + 1
        while i < end:
            t = toks[i]
            if t.kind == "id" and t.text == "for" and i + 1 < end \
                    and toks[i + 1].kind == "punct" \
                    and toks[i + 1].text == "(":
                close = _skip_balanced(toks, i + 1, "(", ")") - 1
                inner = toks[i + 2 : close]
                colon = None
                depth = 0
                for k, x in enumerate(inner):
                    if x.kind == "punct":
                        if x.text in "([{":
                            depth += 1
                        elif x.text in ")]}":
                            depth -= 1
                        elif x.text == ";" and depth == 0:
                            colon = None
                            break
                        elif x.text == ":" and depth == 0:
                            colon = k
                            break
                if colon is not None:
                    container = inner[colon + 1:]
                    # range decl may add a local (e.g. `auto& kv`)
                    body_open = close + 1
                    if body_open < end and toks[body_open].kind == "punct" \
                            and toks[body_open].text == "{":
                        body = (body_open, self.match.get(body_open, end))
                    else:
                        stmt_end = body_open
                        while stmt_end < end and not (
                                toks[stmt_end].kind == "punct"
                                and toks[stmt_end].text == ";"):
                            stmt_end += 1
                        body = (body_open - 1, stmt_end)
                    self.fm.loops.append(RangeFor(
                        line=t.line, container_tokens=list(container),
                        body=body, func=fn))
                i = close + 1
                continue
            if t.kind == "punct" and t.text == "[":
                lam = self._try_lambda(i, end, fn)
                if lam is not None:
                    self.fm.lambdas.append(lam[0])
                    i = lam[1]
                    continue
            i += 1

    def _try_lambda(self, i, end, fn):
        toks = self.toks
        prev = toks[i - 1] if i > 0 else None
        if prev is not None and (
                prev.kind in ("num", "str", "chr")
                or (prev.kind == "id" and prev.text not in KEYWORDS)
                or (prev.kind == "punct" and prev.text in ("]", ")"))):
            return None  # array subscript / declarator, not a lambda intro
        # capture list
        close_br = None
        depth = 0
        for k in range(i, min(end, i + 200)):
            if toks[k].kind == "punct":
                if toks[k].text == "[":
                    depth += 1
                elif toks[k].text == "]":
                    depth -= 1
                    if depth == 0:
                        close_br = k
                        break
        if close_br is None:
            return None
        captures = _parse_captures(toks[i + 1 : close_br])
        j = close_br + 1
        if j < end and toks[j].kind == "punct" and toks[j].text == "(":
            j = _skip_balanced(toks, j, "(", ")")
        # specifiers: mutable, noexcept, attrs, -> ret
        while j < end:
            t = toks[j]
            if t.kind == "id" and (t.text in ("mutable", "constexpr")
                                   or t.text in ATTR_MACROS
                                   or t.text.startswith("MCS_")):
                j += 1
                if j < end and toks[j].kind == "punct" and toks[j].text == "(":
                    j = _skip_balanced(toks, j, "(", ")")
                continue
            if t.kind == "punct" and t.text == "->":
                j += 1
                while j < end and not (toks[j].kind == "punct"
                                       and toks[j].text == "{"):
                    if toks[j].kind == "punct" and toks[j].text in ";)":
                        return None
                    j += 1
                continue
            break
        if j >= end or not (toks[j].kind == "punct" and toks[j].text == "{"):
            return None
        body_end = self.match.get(j)
        if body_end is None:
            return None
        callee, receiver = self._lambda_context(i)
        return (Lambda(line=toks[i].line, captures=captures,
                       body=(j, body_end), context_callee=callee,
                       context_receiver=receiver, func=fn), body_end + 1)

    def _lambda_context(self, lam_i):
        """Callee the lambda is an argument of: `recv.callee( [..]` or
        `std::thread t{ [..]` (brace-init)."""
        toks = self.toks
        k = lam_i - 1
        if k < 0 or toks[k].kind != "punct" or toks[k].text not in "({,":
            return None, None
        # walk back over other arguments to the opening '(' / '{'
        depth = 0
        while k >= 0:
            t = toks[k]
            if t.kind == "punct":
                if t.text in ")]}":
                    depth += 1
                elif t.text in "([{":
                    if depth == 0:
                        break
                    depth -= 1
            k -= 1
        if k <= 0:
            return None, None
        name_i = k - 1
        if toks[name_i].kind != "id":
            return None, None
        callee = toks[name_i].text
        # Declaration-style init `std::thread t{[..]{..}}` / `Type v([..])`:
        # the token left of the variable name is the type — that is the real
        # context, not the variable name.
        if name_i >= 1 and toks[name_i - 1].kind == "id" \
                and toks[name_i - 1].text not in KEYWORDS:
            name_i -= 1
            callee = toks[name_i].text
        receiver = None
        r = name_i - 1
        if r >= 1 and toks[r].kind == "punct" and toks[r].text in (".", "->") \
                and toks[r - 1].kind == "id":
            receiver = toks[r - 1].text
        elif r >= 1 and toks[r].kind == "punct" and toks[r].text == "::" \
                and toks[r - 1].kind == "id":
            receiver = toks[r - 1].text  # e.g. std::thread → receiver 'std'
        return callee, receiver


def _parse_captures(tokens):
    out = []
    item: list = []
    depth = 0
    for t in tokens + [None]:
        if t is not None and t.kind == "punct" and t.text in "([{<":
            depth += 1
        elif t is not None and t.kind == "punct" and t.text in ")]}>":
            depth -= 1
        if t is None or (t.kind == "punct" and t.text == "," and depth == 0):
            if item:
                out.append(_classify_capture(item))
            item = []
            continue
        item.append(t)
    return [c for c in out if c is not None]


def _classify_capture(item):
    texts = [t.text for t in item]
    if texts == ["this"]:
        return ("this", "this")
    if texts == ["&"]:
        return ("default_ref", "")
    if texts == ["="]:
        return ("default_val", "")
    if texts and texts[0] == "&" and len(texts) >= 2 and item[1].kind == "id":
        return ("ref", texts[1])
    if item and item[0].kind == "id":
        return ("val", texts[0])  # includes init-captures `x = expr`
    return None


def _parse_params(tokens):
    """Parameter list → [(type_text, name)]."""
    params = []
    item: list = []
    depth = 0
    for t in tokens + [None]:
        if t is not None and t.kind == "punct" and t.text in "([{":
            depth += 1
        elif t is not None and t.kind == "punct" and t.text in ")]}":
            depth -= 1
        elif t is not None and t.kind == "punct" and t.text == "<" \
                and item and item[-1].kind == "id":
            depth += 1
        elif t is not None and t.kind == "punct" and t.text == ">" and depth:
            depth -= 1
        if t is None or (t.kind == "punct" and t.text == "," and depth == 0):
            if item:
                cut = None
                for k, x in enumerate(item):
                    if x.kind == "punct" and x.text == "=":
                        cut = k
                        break
                decl = item[:cut] if cut is not None else item
                if decl and decl[-1].kind == "id" and len(decl) >= 2:
                    params.append((_type_text(decl[:-1]), decl[-1].text))
                elif decl:
                    params.append((_type_text(decl), ""))
            item = []
            continue
        item.append(t)
    return params


_LOCAL_HEAD_BAN = KEYWORDS | frozenset(
    "public private protected else then".split())


def _parse_locals(toks, start, end):
    """Best-effort local variable declarations inside a body:
    `Type name ( = | { | ; )` at statement starts. Misses plenty; never
    guesses."""
    out = {}
    i = start
    stmt_start = True
    while i < end:
        t = toks[i]
        if t.kind == "punct" and t.text in ";{}":
            stmt_start = True
            i += 1
            continue
        if not stmt_start:
            i += 1
            continue
        stmt_start = False
        if t.kind != "id" or t.text in _LOCAL_HEAD_BAN:
            continue
        # gather a plausible type: id/::/<>/*/&/const/auto sequence
        j = i
        type_toks = []
        while j < end:
            x = toks[j]
            if x.kind == "id":
                type_toks.append(x)
                j += 1
                continue
            if x.kind == "punct" and x.text == "::":
                type_toks.append(x)
                j += 1
                continue
            if x.kind == "punct" and x.text == "<" and type_toks \
                    and type_toks[-1].kind == "id":
                k = j
                depth = 0
                ok = None
                while k < end:
                    y = toks[k]
                    if y.kind == "punct":
                        if y.text == "<":
                            depth += 1
                        elif y.text == ">":
                            depth -= 1
                            if depth == 0:
                                ok = k + 1
                                break
                        elif y.text == ">>":
                            depth -= 2
                            if depth <= 0:
                                ok = k + 1
                                break
                        elif y.text in ";={":
                            break
                        elif y.text == "(":
                            k = _skip_balanced(toks, k, "(", ")")
                            continue
                    k += 1
                if ok is None:
                    break
                for z in range(j, ok):
                    type_toks.append(toks[z])
                j = ok
                continue
            if x.kind == "punct" and x.text in ("*", "&", "&&"):
                type_toks.append(x)
                j += 1
                continue
            break
        if len(type_toks) < 2 or j >= end:
            continue
        name_tok = type_toks[-1]
        if name_tok.kind != "id" or name_tok.text in _LOCAL_HEAD_BAN:
            continue
        terminator = toks[j]
        if terminator.kind == "punct" and terminator.text in (";", "=", "{"):
            ty = _type_text(type_toks[:-1])
            # require the type to actually look like a type
            if any(tt.kind == "id" and tt.text not in TYPE_QUALIFIERS
                   for tt in type_toks[:-1]):
                out.setdefault(name_tok.text, ty)
        i = j if j > i else i + 1
    return out
