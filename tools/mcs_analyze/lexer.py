"""C++ tokenizer for mcs_analyze's internal frontend.

Produces a flat token stream with comments, string/char literals, and
preprocessor lines classified — so no check can ever match inside a comment
or a string literal again (the regex false-positive class that killed
detlint's credibility). This is not a full C++ lexer: it only needs to be
faithful about token *boundaries* (identifiers, literals, multi-char
punctuators, raw strings) so the structural indexer above it can match
braces and read declarations.
"""

from __future__ import annotations

from dataclasses import dataclass

# Longest-match-first multi-character punctuators.
_PUNCTS = [
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++",
    "--", ".*", "##",
]

IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
IDENT_CONT = IDENT_START | frozenset("0123456789")
DIGITS = frozenset("0123456789")


@dataclass
class Token:
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct' | 'pp'
    text: str
    line: int

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.kind}:{self.text}@{self.line}"


@dataclass
class LexedFile:
    tokens: list  # list[Token]
    comments: list  # list[tuple[int, str]] (line, comment text)
    # line -> True when the line holds at least one non-comment token
    code_lines: set


def lex(text: str) -> LexedFile:
    tokens: list[Token] = []
    comments: list[tuple[int, str]] = []
    code_lines: set[int] = set()
    i, n, line = 0, len(text), 1

    def emit(kind: str, s: str, ln: int) -> None:
        tokens.append(Token(kind, s, ln))
        code_lines.add(ln)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""

        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Line comment.
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comments.append((line, text[i:j]))
            i = j
            continue

        # Block comment (may span lines; attribute one comment per start line).
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            comments.append((line, chunk))
            line += chunk.count("\n")
            i = j
            continue

        # Preprocessor line (only when '#' begins the logical line). Consume
        # through backslash continuations; emit one opaque token.
        if c == "#":
            back = i - 1
            while back >= 0 and text[back] in " \t":
                back -= 1
            if back < 0 or text[back] == "\n":
                start_line = line
                j = i
                while j < n:
                    k = text.find("\n", j)
                    if k == -1:
                        j = n
                        break
                    if text[k - 1] == "\\" if k > 0 else False:
                        line += 1
                        j = k + 1
                        continue
                    j = k
                    break
                emit("pp", text[i:j], start_line)
                i = j
                continue

        # Raw string literal R"delim( ... )delim".
        if c == "R" and nxt == '"':
            k = text.find("(", i + 2)
            if k != -1 and k - (i + 2) <= 16:
                delim = text[i + 2 : k]
                close = ")" + delim + '"'
                j = text.find(close, k + 1)
                j = n if j == -1 else j + len(close)
                chunk = text[i:j]
                emit("str", chunk, line)
                line += chunk.count("\n")
                i = j
                continue

        # String / char literal (with escapes). Also covers prefixed forms
        # via the identifier path below falling through? No: handle u8"" etc
        # by letting the identifier lexer grab the prefix, then the quote
        # lands here — acceptable: the literal still lexes as 'str'.
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            emit("str" if quote == '"' else "chr", text[i:j], line)
            line += text.count("\n", i, j)
            i = j
            continue

        # Identifier / keyword.
        if c in IDENT_START:
            j = i + 1
            while j < n and text[j] in IDENT_CONT:
                j += 1
            emit("id", text[i:j], line)
            i = j
            continue

        # Number (grab a pp-number blob; exactness is irrelevant here).
        if c in DIGITS or (c == "." and nxt in DIGITS):
            j = i + 1
            while j < n and (text[j] in IDENT_CONT or text[j] in ".'+-"
                             and text[j - 1] in "eEpP"):
                if text[j] in "+-" and text[j - 1] not in "eEpP":
                    break
                j += 1
            emit("num", text[i:j], line)
            i = j
            continue

        # Punctuator.
        for p in _PUNCTS:
            if text.startswith(p, i):
                emit("punct", p, line)
                i += len(p)
                break
        else:
            emit("punct", c, line)
            i += 1

    return LexedFile(tokens=tokens, comments=comments, code_lines=code_lines)
