"""mcs_analyze: AST-grounded determinism & concurrency analysis for the
mcommerce simulation sources.

Usage:
  python3 tools/mcs_analyze --root src [--root bench] \
      [--check determinism|concurrency|contracts|hotpath|shard|locking|...] \
      [--only <check>] [--paths <glob> ...] \
      [--frontend auto|internal|clang] [--compile-commands build/...] \
      [--baseline tools/mcs_analyze/baseline.json | --no-baseline] \
      [--write-baseline] [--json out.json] [--model-cache FILE] \
      [--list-checks] [-q]

Exit status: 0 clean (no findings beyond suppressions/baseline), 1 when new
findings are reported, 2 on usage errors. See DESIGN.md §9 for each check's
rule, rationale, and suppression syntax; §11 for the interprocedural
families.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import pickle
import sys
from pathlib import Path

import baseline as baseline_mod
import checks as checks_mod
import frontend_clang
import frontend_internal
from model import Project

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp", ".inl"}

TOOL_DIR = Path(__file__).resolve().parent
DEFAULT_BASELINE = TOOL_DIR / "baseline.json"


def _repo_root() -> Path:
    # tools/mcs_analyze/cli.py -> repo root is two levels up from tools/
    return TOOL_DIR.parent.parent


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_files(roots) -> list:
    files = []
    for root in roots:
        files.extend(p for p in sorted(root.rglob("*"))
                     if p.suffix in CXX_SUFFIXES and p.is_file())
    return files


# Bump when the structural model or internal frontend changes shape, so a
# stale cache from an older tool version is ignored rather than mis-decoded.
MODEL_CACHE_VERSION = 2  # v2: arena-escape annotations on the model records


def _load_model_cache(path: Path) -> dict:
    """{resolved path str: (mtime_ns, size, FileModel)}; {} when absent or
    written by a different tool version."""
    try:
        with open(path, "rb") as fh:
            data = pickle.load(fh)
        if data.get("version") == MODEL_CACHE_VERSION:
            return data["files"]
    except Exception:
        pass
    return {}


def _save_model_cache(path: Path, cache: dict) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump({"version": MODEL_CACHE_VERSION, "files": cache},
                        fh, protocol=pickle.HIGHEST_PROTOCOL)
    except OSError as e:
        print(f"mcs-analyze: could not write model cache {path}: {e}",
              file=sys.stderr)


def build_project(files, frontend: str, compile_commands,
                  cache_path: Path | None = None) -> tuple:
    """-> (Project, frontend_used)"""
    use_clang = False
    if frontend == "clang":
        if not frontend_clang.available():
            print("mcs-analyze: --frontend clang requested but clang.cindex "
                  "is unavailable; falling back to internal frontend",
                  file=sys.stderr)
        else:
            use_clang = True
    elif frontend == "auto":
        use_clang = frontend_clang.available()

    repo = _repo_root()
    args_by_src = (frontend_clang.load_compile_args(compile_commands)
                   if use_clang else {})
    # The model cache only applies to the internal frontend: clang models
    # hold cursor-derived facts tied to compile args we don't key on.
    cache = (_load_model_cache(cache_path)
             if cache_path is not None and not use_clang else {})
    fresh: dict = {}
    models = []
    for path in files:
        rel = _rel(path, repo)
        if use_clang:
            text = path.read_text(encoding="utf-8", errors="replace")
            args = args_by_src.get(str(path.resolve()))
            models.append(frontend_clang.build_file_model(
                path, rel, text, args))
            continue
        key = str(path.resolve())
        st = path.stat()
        hit = cache.get(key)
        if hit is not None and hit[0] == st.st_mtime_ns \
                and hit[1] == st.st_size:
            fm = hit[2]
        else:
            text = path.read_text(encoding="utf-8", errors="replace")
            fm = frontend_internal.build_file_model(path, rel, text)
        fresh[key] = (st.st_mtime_ns, st.st_size, fm)
        models.append(fm)
    if cache_path is not None and not use_clang:
        _save_model_cache(cache_path, fresh)
    return Project(models), ("clang" if use_clang else "internal")


def emit_json(path: Path, findings, frontend_used: str, checks_run) -> None:
    doc = {
        "tool": "mcs-analyze",
        "frontend": frontend_used,
        "checks": list(checks_run),
        "counts": {
            "total": len(findings),
            "active": sum(1 for f in findings
                          if not f.suppressed and not f.baselined),
            "suppressed": sum(1 for f in findings if f.suppressed),
            "baselined": sum(1 for f in findings if f.baselined),
        },
        "findings": [
            {
                "file": f.path,
                "line": f.line,
                "check": f.check,
                "severity": f.severity,
                "message": f.message,
                "context": f.context,
                "suppressed": f.suppressed,
                "baselined": f.baselined,
            }
            for f in findings
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def main(argv) -> int:
    ap = argparse.ArgumentParser(
        prog="mcs_analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", action="append", type=Path, default=[],
                    help="directory tree to scan (repeatable; default src/)")
    ap.add_argument("--check", default="all",
                    help="comma list of checks or families "
                         "(determinism, concurrency, contracts, hotpath, "
                         "shard, locking, or names); default all")
    ap.add_argument("--only", default=None, metavar="CHECK",
                    help="run exactly this check or family (overrides "
                         "--check); shorthand for --check CHECK")
    ap.add_argument("--paths", action="append", default=[], metavar="GLOB",
                    help="only report findings whose repo-relative path "
                         "matches GLOB (repeatable; the whole tree is still "
                         "parsed so call-graph checks stay whole-program)")
    ap.add_argument("--model-cache", type=Path, default=None, metavar="FILE",
                    help="pickle cache of parsed file models, keyed by "
                         "mtime+size; shares parsing between consecutive "
                         "runs (internal frontend only)")
    ap.add_argument("--frontend", choices=("auto", "internal", "clang"),
                    default="auto",
                    help="auto uses clang.cindex when importable, else the "
                         "built-in token/structural frontend")
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json for the clang frontend")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                    help=f"accepted-findings file (default {DEFAULT_BASELINE})")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file; report everything")
    ap.add_argument("--write-baseline", action="store_true",
                    help="accept all current findings into --baseline and "
                         "exit 0")
    ap.add_argument("--json", type=Path, default=None, metavar="FILE",
                    help="also write machine-readable findings JSON")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="print findings only, no summary line")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return 2 if e.code not in (0, None) else 0

    if args.list_checks:
        for family, names in checks_mod.FAMILIES.items():
            print(f"{family}:")
            for n in names:
                print(f"  {n} [{checks_mod.SEVERITY[n]}]")
        return 0

    try:
        selected = checks_mod.resolve_check_names(args.only
                                                  if args.only is not None
                                                  else args.check)
    except ValueError as e:
        print(f"mcs-analyze: {e}", file=sys.stderr)
        return 2

    roots = args.root or [_repo_root() / "src"]
    for root in roots:
        if not root.is_dir():
            print(f"mcs-analyze: no such directory: {root}", file=sys.stderr)
            return 2

    files = collect_files(roots)
    project, frontend_used = build_project(files, args.frontend,
                                           args.compile_commands,
                                           args.model_cache)
    findings = checks_mod.run_checks(project, selected)

    if args.paths:
        findings = [f for f in findings
                    if any(fnmatch.fnmatch(f.path, pat)
                           for pat in args.paths)]

    if args.write_baseline:
        n = baseline_mod.write(args.baseline, findings)
        print(f"mcs-analyze: baseline written to {args.baseline} "
              f"({n} accepted finding(s))")
        if args.json:
            emit_json(args.json, findings, frontend_used, selected)
        return 0

    if not args.no_baseline:
        baseline_mod.apply(findings, baseline_mod.load(args.baseline))

    active = [f for f in findings if not f.suppressed and not f.baselined]
    for f in active:
        print(f"{f.path}:{f.line}: [{f.check}] {f.severity}: {f.message}")

    if args.json:
        emit_json(args.json, findings, frontend_used, selected)

    if active:
        if not args.quiet:
            print(f"mcs-analyze: {len(active)} new finding(s) "
                  f"({len(findings) - len(active)} suppressed/baselined) in "
                  f"{len(files)} file(s) [frontend={frontend_used}]",
                  file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"mcs-analyze: clean ({len(files)} files, "
              f"{len(selected)} checks, frontend={frontend_used}"
              + (f", {len(findings)} suppressed/baselined" if findings
                 else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
