"""mcs_analyze: AST-grounded determinism & concurrency analysis for the
mcommerce simulation sources.

Usage:
  python3 tools/mcs_analyze --root src [--root bench] \
      [--check determinism|concurrency|contracts|<name>[,<name>...]] \
      [--frontend auto|internal|clang] [--compile-commands build/...] \
      [--baseline tools/mcs_analyze/baseline.json | --no-baseline] \
      [--write-baseline] [--json out.json] [--list-checks] [-q]

Exit status: 0 clean (no findings beyond suppressions/baseline), 1 when new
findings are reported, 2 on usage errors. See DESIGN.md §9 for each check's
rule, rationale, and suppression syntax.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import baseline as baseline_mod
import checks as checks_mod
import frontend_clang
import frontend_internal
from model import Project

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp", ".inl"}

TOOL_DIR = Path(__file__).resolve().parent
DEFAULT_BASELINE = TOOL_DIR / "baseline.json"


def _repo_root() -> Path:
    # tools/mcs_analyze/cli.py -> repo root is two levels up from tools/
    return TOOL_DIR.parent.parent


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_files(roots) -> list:
    files = []
    for root in roots:
        files.extend(p for p in sorted(root.rglob("*"))
                     if p.suffix in CXX_SUFFIXES and p.is_file())
    return files


def build_project(files, frontend: str, compile_commands) -> tuple:
    """-> (Project, frontend_used)"""
    use_clang = False
    if frontend == "clang":
        if not frontend_clang.available():
            print("mcs-analyze: --frontend clang requested but clang.cindex "
                  "is unavailable; falling back to internal frontend",
                  file=sys.stderr)
        else:
            use_clang = True
    elif frontend == "auto":
        use_clang = frontend_clang.available()

    repo = _repo_root()
    args_by_src = (frontend_clang.load_compile_args(compile_commands)
                   if use_clang else {})
    models = []
    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        rel = _rel(path, repo)
        if use_clang:
            args = args_by_src.get(str(path.resolve()))
            models.append(frontend_clang.build_file_model(
                path, rel, text, args))
        else:
            models.append(frontend_internal.build_file_model(path, rel, text))
    return Project(models), ("clang" if use_clang else "internal")


def emit_json(path: Path, findings, frontend_used: str, checks_run) -> None:
    doc = {
        "tool": "mcs-analyze",
        "frontend": frontend_used,
        "checks": list(checks_run),
        "counts": {
            "total": len(findings),
            "active": sum(1 for f in findings
                          if not f.suppressed and not f.baselined),
            "suppressed": sum(1 for f in findings if f.suppressed),
            "baselined": sum(1 for f in findings if f.baselined),
        },
        "findings": [
            {
                "file": f.path,
                "line": f.line,
                "check": f.check,
                "severity": f.severity,
                "message": f.message,
                "context": f.context,
                "suppressed": f.suppressed,
                "baselined": f.baselined,
            }
            for f in findings
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def main(argv) -> int:
    ap = argparse.ArgumentParser(
        prog="mcs_analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", action="append", type=Path, default=[],
                    help="directory tree to scan (repeatable; default src/)")
    ap.add_argument("--check", default="all",
                    help="comma list of checks or families "
                         "(determinism, concurrency, contracts, or names); "
                         "default all")
    ap.add_argument("--frontend", choices=("auto", "internal", "clang"),
                    default="auto",
                    help="auto uses clang.cindex when importable, else the "
                         "built-in token/structural frontend")
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json for the clang frontend")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                    help=f"accepted-findings file (default {DEFAULT_BASELINE})")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file; report everything")
    ap.add_argument("--write-baseline", action="store_true",
                    help="accept all current findings into --baseline and "
                         "exit 0")
    ap.add_argument("--json", type=Path, default=None, metavar="FILE",
                    help="also write machine-readable findings JSON")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="print findings only, no summary line")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return 2 if e.code not in (0, None) else 0

    if args.list_checks:
        for family, names in checks_mod.FAMILIES.items():
            print(f"{family}:")
            for n in names:
                print(f"  {n} [{checks_mod.SEVERITY[n]}]")
        return 0

    try:
        selected = checks_mod.resolve_check_names(args.check)
    except ValueError as e:
        print(f"mcs-analyze: {e}", file=sys.stderr)
        return 2

    roots = args.root or [_repo_root() / "src"]
    for root in roots:
        if not root.is_dir():
            print(f"mcs-analyze: no such directory: {root}", file=sys.stderr)
            return 2

    files = collect_files(roots)
    project, frontend_used = build_project(files, args.frontend,
                                           args.compile_commands)
    findings = checks_mod.run_checks(project, selected)

    if args.write_baseline:
        n = baseline_mod.write(args.baseline, findings)
        print(f"mcs-analyze: baseline written to {args.baseline} "
              f"({n} accepted finding(s))")
        if args.json:
            emit_json(args.json, findings, frontend_used, selected)
        return 0

    if not args.no_baseline:
        baseline_mod.apply(findings, baseline_mod.load(args.baseline))

    active = [f for f in findings if not f.suppressed and not f.baselined]
    for f in active:
        print(f"{f.path}:{f.line}: [{f.check}] {f.severity}: {f.message}")

    if args.json:
        emit_json(args.json, findings, frontend_used, selected)

    if active:
        if not args.quiet:
            print(f"mcs-analyze: {len(active)} new finding(s) "
                  f"({len(findings) - len(active)} suppressed/baselined) in "
                  f"{len(files)} file(s) [frontend={frontend_used}]",
                  file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"mcs-analyze: clean ({len(files)} files, "
              f"{len(selected)} checks, frontend={frontend_used}"
              + (f", {len(findings)} suppressed/baselined" if findings
                 else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
