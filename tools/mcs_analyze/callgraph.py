"""Project-wide symbol table, call graph, and reachability (DESIGN.md §11).

Built once per analysis run from the shared structural model and cached on
the Project, so the three interprocedural check families (hotpath-alloc,
shard-escape, lock-order) share one graph instead of re-deriving it.

Resolution strategy (soundness limits documented in DESIGN.md §11):

  Foo::bar(...)    non-virtual: definitions of bar on class Foo only.
  obj.bar(...)     receiver type resolved through locals -> enclosing-class
  obj->bar(...)    members -> project classes; a resolved type T dispatches
                   virtually: bar on T, T's transitive bases (inherited
                   implementations) and T's transitive derived classes
                   (overrides reached through a base pointer).
  this->bar(...)   the enclosing class, dispatched as above.
  bar(...)         inside a method: the enclosing class and its bases first;
                   otherwise free functions named bar.

  When a receiver's type cannot be resolved, the call falls back to *every*
  method named bar — but only when that over-approximation stays small
  (<= FALLBACK_CAP candidates); a common name like size() resolves to
  nothing rather than to everything. Calls through std::function values
  (protocol handlers, timers) are invisible by design: the checks anchor at
  explicit per-component entry points instead of chasing type-erased hops.
"""

from __future__ import annotations

from collections import deque

KEYWORD_CALLS = frozenset(
    "if for while switch return sizeof alignof decltype static_cast "
    "dynamic_cast const_cast reinterpret_cast new delete throw catch "
    "assert defined alignas noexcept typeid".split())

# A receiver-less fallback to every same-named method is only sound-ish when
# the name is rare; past this many candidates the edge is dropped instead.
FALLBACK_CAP = 4


def _is_call(toks, i):
    nxt = toks[i + 1] if i + 1 < len(toks) else None
    return nxt is not None and nxt.kind == "punct" and nxt.text == "("


class CallGraph:
    def __init__(self, project):
        self.project = project
        # (cls_name, name) -> [FunctionDef]; cls_name '' for free functions
        self.by_qual: dict = {}
        # class name -> [direct derived class names]
        self.derived: dict = {}
        # FunctionDef -> [(callee FunctionDef, line)]
        self.edges: dict = {}
        self.unresolved_calls = 0
        self._file_of: dict = {}  # rel path -> FileModel
        self._build()

    # ---- construction ----------------------------------------------------

    def _build(self):
        project = self.project
        for fm in project.files:
            self._file_of[fm.rel] = fm
            for fn in fm.functions:
                self.by_qual.setdefault((fn.cls_name or "", fn.name),
                                        []).append(fn)
        for ci in project.class_index.values():
            for base in ci.bases:
                self.derived.setdefault(base, []).append(ci.name)
        for fm in project.files:
            for fn in fm.functions:
                self.edges[fn] = self._calls_from(fm, fn)

    def _family(self, cls_name):
        """cls_name plus transitive bases and derived classes (virtual
        dispatch closure). Cycle-safe."""
        out = []
        seen = set()
        work = [cls_name]
        while work:
            c = work.pop()
            if c in seen:
                continue
            seen.add(c)
            out.append(c)
            ci = self.project.class_index.get(c)
            if ci is not None:
                work.extend(ci.bases)
            work.extend(self.derived.get(c, ()))
        return out

    def _methods_on(self, cls_name, name, virtual=True):
        classes = self._family(cls_name) if virtual else [cls_name]
        found = []
        for c in classes:
            found.extend(self.by_qual.get((c, name), ()))
        return found

    def _class_in_type(self, ty):
        hit = None
        for word in ty.replace("<", " ").replace(">", " ").split():
            if word in self.project.class_index:
                hit = word  # last class name wins: unique_ptr<ThreadPool>
        return hit

    def _receiver_class(self, fm, fn, recv_name):
        """Resolve a receiver variable name to a project class name, through
        locals then the enclosing class's members. Type text may be a smart
        pointer / reference wrapper; any known class name inside it wins."""
        ty = fn.locals.get(recv_name)
        if ty is None and fn.cls_name:
            ci = self.project.class_index.get(fn.cls_name)
            if ci is not None:
                mem = ci.member(recv_name)
                if mem is not None:
                    ty = mem.type_text
        if ty is None:
            # a global object?
            for gv in fm.globals:
                if gv.name == recv_name:
                    ty = gv.type_text
                    break
        if ty is None:
            return None
        return self._class_in_type(ty)

    def _chain_receiver_class(self, fm, fn, toks, i):
        """Receiver class for the call at token i (toks[i-1] is . or ->),
        following plain member-access chains: db_.wal_.append(...) resolves
        db_ -> Database, then member wal_ -> Wal. Computed receivers
        (foo().m(), arr[k].m()) resolve to None as before."""
        names = []
        j = i - 1  # the . or -> before the method name
        while j >= 1 and toks[j].kind == "punct" and toks[j].text in (".",
                                                                     "->"):
            recv = toks[j - 1]
            if recv.kind != "id":
                return None  # computed receiver: fall back as before
            names.append(recv.text)
            j -= 2
        names.reverse()
        if not names:
            return None
        head = names[0]
        if head == "this":
            cls = fn.cls_name
        else:
            cls = self._receiver_class(fm, fn, head)
        for name in names[1:]:
            if cls is None:
                return None
            ci = self.project.class_index.get(cls)
            if ci is None:
                return None
            mem = ci.member(name)
            if mem is None:
                return None
            cls = self._class_in_type(mem.type_text)
        return cls

    def _calls_from(self, fm, fn):
        toks = fm.tokens
        start, end = fn.body
        out = []
        seen_at = set()
        for i in range(start + 1, end):
            t = toks[i]
            if t.kind != "id" or t.text in KEYWORD_CALLS \
                    or not _is_call(toks, i):
                continue
            callees = self._resolve(fm, fn, toks, i)
            for callee in callees:
                key = (id(callee), t.line)
                if key in seen_at:
                    continue
                seen_at.add(key)
                out.append((callee, t.line))
        return out

    def _resolve(self, fm, fn, toks, i, allow_fallback=True):
        """Callee candidates for the call at token i. With
        allow_fallback=False the receiver-less everyone-named-X guess is
        disabled: only definitive resolutions (receiver type known, explicit
        qualification, enclosing class, project free function) are returned
        — the mode hotpath-alloc uses to decide whether a call lands in
        analyzed project code."""
        name = toks[i].text
        prev = toks[i - 1] if i > 0 else None
        if prev is not None and prev.kind == "punct":
            if prev.text == "::":
                qual = toks[i - 2] if i >= 2 else None
                if qual is not None and qual.kind == "id" \
                        and qual.text != "std":
                    if qual.text in self.project.class_index:
                        return self._methods_on(qual.text, name,
                                                virtual=False)
                    # namespace qualification: treat as free function
                    return list(self.by_qual.get(("", name), ()))
                return []  # std:: call
            if prev.text in (".", "->"):
                cls = self._chain_receiver_class(fm, fn, toks, i)
                if cls is None:
                    return self._fallback(name) if allow_fallback else []
                methods = self._methods_on(cls, name)
                if not methods and not allow_fallback:
                    return []  # known class, but the method isn't its own
                return methods
        # Bare call: enclosing class family first, then free functions.
        if fn.cls_name:
            methods = self._methods_on(fn.cls_name, name)
            if methods:
                return methods
        return list(self.by_qual.get(("", name), ()))

    def _fallback(self, name):
        """Unresolved receiver: all methods with this name, if few enough."""
        found = []
        for (cls, n), fns in self.by_qual.items():
            if n == name and cls:
                found.extend(fns)
        if not found or len(found) > FALLBACK_CAP:
            if found:
                self.unresolved_calls += 1
            return []
        return found

    # ---- queries ---------------------------------------------------------

    def functions_named(self, cls_name, name):
        """Definitions of cls_name::name (virtual closure) or free `name`."""
        if cls_name:
            return self._methods_on(cls_name, name)
        return list(self.by_qual.get(("", name), ()))

    def file_of(self, fn):
        return self._file_of.get(fn.path)

    def reachable(self, entries):
        """BFS from entry FunctionDefs -> {FunctionDef: (entry, via_line)}.
        `entry` is the entry FunctionDef whose BFS first reached the node;
        deterministic because entries and edges keep file/token order."""
        out = {}
        dq = deque()
        for e in entries:
            if e not in out:
                out[e] = (e, 0)
                dq.append(e)
        while dq:
            fn = dq.popleft()
            entry, _ = out[fn]
            for callee, line in self.edges.get(fn, ()):
                if callee not in out:
                    out[callee] = (entry, line)
                    dq.append(callee)
        return out
