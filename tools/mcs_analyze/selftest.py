#!/usr/bin/env python3
"""mcs_analyze selftest: run the analyzer over the known-bad and known-clean
fixtures and assert each check fires exactly where it should.

Wired into ctest as `analyze_fixture_test`. Exit 0 on success, 1 on any
missed or spurious expectation.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import checks as checks_mod  # noqa: E402
import cli  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"

# file (relative to fixtures/bad) -> {check: minimum finding count}
EXPECT_BAD = {
    "wallclock.cpp": {"wallclock": 5},
    "rng.cpp": {"rng": 4},
    "getenv.cpp": {"getenv": 1},
    "unordered_sink.cpp": {"unordered-sink": 2},
    "float_accum.cpp": {"float-accum": 1},
    "uninit_pod.cpp": {"uninit-pod": 3},
    "unguarded.cpp": {"unguarded-field": 3},
    "sim_escape.cpp": {"sim-escape": 2},
    "src/net/missing_contract.cpp": {"missing-contract": 1},
    "src/obs/unexempt_clock.cpp": {"wallclock": 1},
    "hotpath_alloc.cpp": {"hotpath-alloc": 5},
    "shard_escape.cpp": {"shard-escape": 3},
    "lock_order.cpp": {"lock-order": 4},
    "arena_escape_field.cpp": {"arena-escape": 2},
    "arena_escape_global.cpp": {"arena-escape": 1},
    "arena_escape_return.cpp": {"arena-escape": 3},
    "arena_escape_view.cpp": {"arena-escape": 1},
    "arena_escape_reset_use.cpp": {"arena-escape": 2},
    "arena_escape_thread.cpp": {"arena-escape": 2},
}

# Findings a bad fixture may legitimately raise beyond the check it targets
# (e.g. the unguarded fixture's worker loop has no contract... no: fixtures
# under bad/ sit outside component dirs except the nested one).
TOLERATED_EXTRA: dict = {}


def run(root: Path):
    files = cli.collect_files([root])
    project, _ = cli.build_project(files, "internal", None)
    findings = checks_mod.run_checks(project, checks_mod.ALL_CHECKS)
    return [f for f in findings if not f.suppressed]


def check_callgraph(failures):
    """Round-trip fixtures/callgraph/: a class split across header/impl, a
    virtual override dispatched through a base pointer, and a free-function
    recursion cycle must all survive model -> call graph -> queries."""
    files = cli.collect_files([FIXTURES / "callgraph"])
    project, _ = cli.build_project(files, "internal", None)
    cg = project.callgraph()

    def qual(fn):
        return f"{fn.cls_name}::{fn.name}" if fn.cls_name else fn.name

    def callees(name, cls=None):
        fns = cg.functions_named(cls, name)
        got = set()
        for fn in fns:
            if cls and fn.cls_name != cls:
                continue  # functions_named closes over the family
            got.update(qual(c) for c, _line in cg.edges.get(fn, ()))
        return got

    # header/impl split: methods declared in widget.h resolve to their
    # definitions in widget.cpp.
    renders = cg.functions_named("Widget", "render")
    if {qual(f) for f in renders} != {"Widget::render", "Button::render"}:
        failures.append("callgraph: virtual closure of Widget::render "
                        f"wrong: {sorted(qual(f) for f in renders)}")
    for fn in renders:
        if not fn.path.endswith("widget.cpp"):
            failures.append(f"callgraph: {qual(fn)} should resolve to its "
                            f"impl-file definition, got {fn.path}")

    # virtual dispatch through a Widget* local hits both implementations.
    dispatched = callees("render", cls="Button")
    if not {"Widget::render", "Button::render"} <= dispatched:
        failures.append("callgraph: base-pointer dispatch from "
                        f"Button::render missed overrides: "
                        f"{sorted(dispatched)}")

    # recursion cycle between free functions survives edge extraction.
    if "free_pong" not in callees("free_ping") \
            or "free_ping" not in callees("free_pong"):
        failures.append("callgraph: free_ping <-> free_pong cycle edges "
                        "missing")

    # reachability walks the whole chain (and terminates despite the cycle).
    entries = [f for f in cg.functions_named("Widget", "render")
               if f.cls_name == "Widget"]
    reached = {qual(f) for f in cg.reachable(entries)}
    want = {"Widget::render", "Widget::helper", "free_ping", "free_pong"}
    if not want <= reached:
        failures.append(f"callgraph: reachability from Widget::render got "
                        f"{sorted(reached)}, missing {sorted(want - reached)}")


def main() -> int:
    failures = []

    bad = run(FIXTURES / "bad")
    by_file: dict = {}
    for f in bad:
        rel = f.path.split("fixtures/bad/", 1)[-1]
        by_file.setdefault(rel, {}).setdefault(f.check, 0)
        by_file[rel][f.check] += 1

    for rel, expected in EXPECT_BAD.items():
        got = by_file.get(rel, {})
        for check, minimum in expected.items():
            n = got.get(check, 0)
            if n < minimum:
                failures.append(
                    f"bad/{rel}: expected >= {minimum} '{check}' finding(s), "
                    f"got {n}")
    for rel, got in by_file.items():
        if rel not in EXPECT_BAD:
            failures.append(f"bad/{rel}: unexpected fixture file with "
                            f"findings {got}")
            continue
        for check, n in got.items():
            if check not in EXPECT_BAD[rel] \
                    and check not in TOLERATED_EXTRA.get(rel, ()):
                failures.append(
                    f"bad/{rel}: spurious '{check}' finding(s) ({n}) — "
                    "fixture should only trip its own check")

    clean = run(FIXTURES / "clean")
    for f in clean:
        failures.append(f"clean fixture tripped {f.check}: "
                        f"{f.path}:{f.line}: {f.message}")

    check_callgraph(failures)

    # Coverage guard: every check family must have at least one firing
    # fixture, so a check that silently stops firing fails this test.
    fired = {f.check for f in bad}
    for family, names in checks_mod.FAMILIES.items():
        if not fired.intersection(names):
            failures.append(f"no fixture fires any '{family}' check")
    for check in checks_mod.ALL_CHECKS:
        if check not in fired:
            failures.append(f"check '{check}' fires on no fixture")

    if failures:
        print("mcs-analyze selftest: FAIL", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print(f"mcs-analyze selftest: ok "
          f"({len(bad)} bad findings as expected, clean fixture clean, "
          f"all {len(checks_mod.ALL_CHECKS)} checks covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
