"""Entry point: `python3 tools/mcs_analyze <args>`.

The package's modules import each other by bare name so they also run from a
checkout without installation; bootstrap sys.path accordingly.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main(sys.argv[1:]))
