#!/usr/bin/env python3
"""check_telemetry_bench: gate on the always-on telemetry stack.

Validates a bench/telemetry summary JSON (the committed BENCH_telemetry.json
or a fresh run) and optionally the measured overhead of running with full
telemetry:

  * liveness: every one of the six Figure 2 component metric namespaces —
    application, station, middleware, wireless, wired, host — accumulated a
    nonzero counter total, and the flight-recorder timeline holds at least
    one nonzero series per component. A zero namespace means a component
    stopped updating its metrics (instrumentation rot), the exact failure
    this gate exists to catch.
  * determinism: with --identical OTHER, this file and OTHER must be
    byte-identical — two runs of the same scenario may not diverge.
  * overhead: with --overhead FILE (a bench/telemetry overhead JSON, never
    committed: it holds machine-specific wall times), the full-telemetry
    arm may cost at most --max-overhead (default 8%: the measured cost is
    ~0, the ceiling absorbs shared-runner wall-time noise around it) over
    the no-registry arm. Only meaningful on Release builds; ctest skips it.

Usage:
  check_telemetry_bench.py BENCH_telemetry.json [--identical other.json]
      [--overhead overhead.json --max-overhead 0.08] [--min-ticks 4]

Exit status: 0 ok, 1 gate failure, 2 usage/schema error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from bench_gate import load_bench_json, report

TOOL = "check_telemetry_bench"

COMPONENTS = ("application", "station", "middleware", "wireless", "wired",
              "host")


def check_summary(path: Path, min_ticks: int, failures: list[str]) -> dict:
    data = load_bench_json(
        path, TOOL, bench="telemetry",
        required=("slo", "component_totals", "timeline", "metrics"))

    slo = data["slo"]
    if slo.get("attempted", 0) <= 0:
        failures.append(f"{path}: workload attempted no transactions")
    if slo.get("ok", 0) <= 0:
        failures.append(f"{path}: workload completed no transactions ok")

    totals = data["component_totals"]
    for name in COMPONENTS:
        if totals.get(name, 0) <= 0:
            failures.append(
                f"{path}: component '{name}' counters are all zero")

    timeline = data["timeline"]
    if timeline.get("ticks", 0) < min_ticks:
        failures.append(
            f"{path}: flight recorder ticked {timeline.get('ticks', 0)} "
            f"time(s), below the {min_ticks} floor")
    series = timeline.get("series", {})
    for name in COMPONENTS:
        live = [s for s, v in series.items()
                if s.startswith(name + ".") and v.get("nonzero")]
        if not live:
            failures.append(
                f"{path}: no nonzero timeline series under '{name}.'")

    for name in COMPONENTS:
        print(f"{name}: counters {totals.get(name, 0)}, "
              f"{sum(1 for s, v in series.items() if s.startswith(name + '.') and v.get('nonzero'))} "
              f"live series")
    return data


def check_overhead(path: Path, max_overhead: float,
                   failures: list[str]) -> None:
    data = load_bench_json(path, TOOL, bench="telemetry_overhead",
                           required=("overhead_frac", "ns_per_txn_off",
                                     "ns_per_txn_on"))
    frac = data["overhead_frac"]
    print(f"overhead: {data['ns_per_txn_off']:.0f} -> "
          f"{data['ns_per_txn_on']:.0f} ns/txn ({frac:+.2%})")
    if frac > max_overhead:
        failures.append(
            f"{path}: full telemetry costs {frac:.2%} over the no-registry "
            f"arm, above the {max_overhead:.0%} ceiling")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("summary", type=Path)
    parser.add_argument("--identical", type=Path,
                        help="second summary that must match byte-for-byte")
    parser.add_argument("--overhead", type=Path,
                        help="telemetry_overhead JSON to gate")
    parser.add_argument("--max-overhead", type=float, default=0.08,
                        help="ceiling on the telemetry overhead fraction")
    parser.add_argument("--min-ticks", type=int, default=4,
                        help="minimum flight-recorder ticks")
    args = parser.parse_args()

    failures: list[str] = []
    data = check_summary(args.summary, args.min_ticks, failures)

    if args.identical is not None:
        try:
            a = args.summary.read_bytes()
            b = args.identical.read_bytes()
        except OSError as exc:
            print(f"{TOOL}: cannot read: {exc}", file=sys.stderr)
            return 2
        if a != b:
            failures.append(
                f"{args.summary} and {args.identical} differ: the telemetry "
                "summary is not deterministic across runs")
        else:
            print(f"determinism: {args.summary} == {args.identical} "
                  f"({len(a)} bytes)")

    if args.overhead is not None:
        check_overhead(args.overhead, args.max_overhead, failures)

    ticks = data["timeline"].get("ticks", 0)
    return report(TOOL, failures,
                  f"all six components live across {ticks} ticks")


if __name__ == "__main__":
    sys.exit(main())
