"""bench_gate: shared plumbing for the BENCH_*.json CI gate scripts.

Every check_*_bench.py script does the same three things around its actual
checks: load a bench JSON and validate its `bench` tag (exit 2 on schema or
I/O problems), accumulate failure strings while printing per-item detail,
and report either "ok" (exit 0) or the failure list (exit 1). This module
is that boilerplate, factored once; the gate-specific thresholds and
comparisons stay in the individual scripts.

Exit-status contract (shared by all gates): 0 ok, 1 gate failure,
2 usage/schema error.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def load_bench_json(path: Path, tool: str, bench: str | None = None,
                    required: tuple[str, ...] = ()) -> dict:
    """Read a bench JSON, exiting 2 with a message on any schema problem.

    `bench` checks the file's "bench" tag; `required` lists top-level keys
    that must be present.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{tool}: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if bench is not None and data.get("bench") != bench:
        print(f"{tool}: {path} is not a bench/{bench} JSON", file=sys.stderr)
        sys.exit(2)
    for key in required:
        if key not in data:
            print(f"{tool}: {path} missing '{key}'", file=sys.stderr)
            sys.exit(2)
    return data


def report(tool: str, failures: list[str], ok_detail: str = "") -> int:
    """Print the verdict and return the script's exit status."""
    if failures:
        print(f"\n{tool}: gate failure:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    suffix = f" — {ok_detail}" if ok_detail else ""
    print(f"{tool}: ok{suffix}")
    return 0
