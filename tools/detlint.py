#!/usr/bin/env python3
"""detlint: static determinism lint for the mcommerce simulation sources.

The simulation's fidelity contract is exact replay for a fixed seed (see
DESIGN.md "Verification & invariants"). This lint bans the source-level
patterns that break that contract:

  rng            rand()/srand()/random()/drand48(), std::random_device and
                 raw standard engines (mt19937 etc.) outside src/sim/random.*
                 — all randomness must flow through the seeded sim::Rng.
  wallclock      wall-clock / CPU-clock APIs (std::chrono clocks, time(),
                 gettimeofday, clock_gettime, localtime, ...). Simulated
                 components must read sim::Simulator::now() only.
  unordered-sched  range-for iteration over an unordered_{map,set} whose loop
                 body schedules simulator events or sends packets: the
                 iteration order is hash-seed dependent, so event order leaks
                 nondeterminism. Iterate a deterministic container or collect
                 and sort first.
  uninit-pod     scalar (int/float/bool/pointer) data members declared
                 without an initializer. Reading one before assignment makes
                 replay depend on stack/heap garbage; default-initialize at
                 the declaration.

Suppression: append "// detlint: allow(<rule>)" to the offending line with
one of the rule names above, plus a reason in the surrounding code.

Exit status: 0 when clean, 1 when any finding is reported (fails the build
and the ctest `detlint` test), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp", ".inl"}

ALLOW_RE = re.compile(r"//\s*detlint:\s*allow\(([a-z-]+)\)")

# Files allowed to use the raw <random> machinery: the seeded wrapper itself.
RNG_EXEMPT = re.compile(r"(^|/)sim/random\.(h|cpp)$")

RNG_PATTERNS = [
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:])random\s*\(\s*\)"), "random()"),
    (re.compile(r"(?<![\w:])[dlm]rand48\s*\("), "*rand48()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(?:mt19937(?:_64)?|minstd_rand0?|ranlux(?:24|48)(?:_base)?|knuth_b|default_random_engine)\b"),
     "raw <random> engine"),
]

WALLCLOCK_PATTERNS = [
    (re.compile(r"\bchrono\s*::\s*(?:system|steady|high_resolution)_clock\b"),
     "std::chrono wall clock"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)"),
     "time()"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get|ftime)\s*\("),
     "OS clock call"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\b(?:localtime|gmtime|ctime|asctime)(?:_r|_s)?\s*\("),
     "calendar time"),
]

# Simulator / network calls that make iteration order observable as event
# order when issued from inside an unordered container loop.
SCHEDULING_CALL = re.compile(
    r"\b(?:after|at|schedule|send|transmit|udp_?\.send|notify_handoff)\s*\(")

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*(\w+)\s*[;{=]")

RANGE_FOR = re.compile(r"\bfor\s*\(\s*(?:const\s+)?[\w:<>,&*\s\[\]]+?:\s*([\w_.\->]+)\s*\)")

SCALAR_MEMBER = re.compile(
    r"""^\s*
        (?:static\s+|mutable\s+|constexpr\s+|const\s+)*
        (?P<type>(?:unsigned\s+|signed\s+|long\s+|short\s+)*
           (?:bool|char|short|int|long|float|double|size_t|ssize_t|
              std::size_t|std::ptrdiff_t|
              (?:std::)?u?int(?:8|16|32|64)_t|(?:sim::)?EventId)
           (?:\s+(?:unsigned|signed|long|short|int))*)
        \s*(?P<ptr>[*&]*)\s*
        (?P<name>\w+)\s*;
    """,
    re.VERBOSE,
)

STRUCT_OPEN = re.compile(r"\b(?:struct|class)\s+\w+[^;{]*\{")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * max(0, j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allows(raw_lines: list[str], lineno: int, rule: str) -> bool:
    if lineno - 1 >= len(raw_lines):
        return False
    m = ALLOW_RE.search(raw_lines[lineno - 1])
    return bool(m) and m.group(1) == rule


def scan_line_patterns(path, raw_lines, clean_lines, findings):
    rel = path.as_posix()
    rng_exempt = bool(RNG_EXEMPT.search(rel))
    for lineno, line in enumerate(clean_lines, start=1):
        if not rng_exempt:
            for pat, what in RNG_PATTERNS:
                if pat.search(line) and not allows(raw_lines, lineno, "rng"):
                    findings.append(Finding(path, lineno, "rng",
                        f"{what}: use the seeded sim::Rng instead"))
        for pat, what in WALLCLOCK_PATTERNS:
            if pat.search(line) and not allows(raw_lines, lineno, "wallclock"):
                findings.append(Finding(path, lineno, "wallclock",
                    f"{what}: simulated code must use Simulator::now()"))


def matching_brace_span(text: str, open_idx: int) -> int:
    """Index one past the brace matching text[open_idx] (which must be '{')."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def scan_unordered_scheduling(path, raw_lines, clean_text, findings):
    unordered_names = set(UNORDERED_DECL.findall(clean_text))
    if not unordered_names:
        return
    for m in RANGE_FOR.finditer(clean_text):
        target = m.group(1)
        base = target.split(".")[-1].split("->")[-1]
        if base not in unordered_names:
            continue
        body_open = clean_text.find("{", m.end())
        paren_stmt_end = clean_text.find(";", m.end())
        if body_open == -1 or (paren_stmt_end != -1 and paren_stmt_end < body_open):
            continue
        body_end = matching_brace_span(clean_text, body_open)
        body = clean_text[body_open:body_end]
        call = SCHEDULING_CALL.search(body)
        if not call:
            continue
        lineno = clean_text.count("\n", 0, m.start()) + 1
        if allows(raw_lines, lineno, "unordered-sched"):
            continue
        findings.append(Finding(path, lineno, "unordered-sched",
            f"iterating unordered container '{base}' while scheduling/sending: "
            "hash order becomes event order; iterate a deterministic container "
            "or collect+sort first"))


def scan_uninit_pod(path, raw_lines, clean_text, findings):
    for sm in STRUCT_OPEN.finditer(clean_text):
        body_open = clean_text.find("{", sm.start())
        body_end = matching_brace_span(clean_text, body_open)
        # Only scan top-level member declarations: mask nested braces
        # (functions, nested types) so locals are not reported.
        body = clean_text[body_open + 1 : body_end - 1]
        depth = 0
        masked = []
        for ch in body:
            if ch == "{":
                depth += 1
                masked.append(" ")
            elif ch == "}":
                depth -= 1
                masked.append(" ")
            else:
                masked.append(ch if depth == 0 or ch == "\n" else " ")
        start_line = clean_text.count("\n", 0, body_open) + 1
        for off, line in enumerate("".join(masked).split("\n")):
            m = SCALAR_MEMBER.match(line)
            if not m:
                continue
            lineno = start_line + off
            if allows(raw_lines, lineno, "uninit-pod"):
                continue
            findings.append(Finding(path, lineno, "uninit-pod",
                f"scalar member '{m.group('name')}' has no initializer: "
                "default-initialize at the declaration so replay never reads "
                "indeterminate memory"))


def scan_file(path: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.split("\n")
    clean_text = strip_comments_and_strings(raw)
    clean_lines = clean_text.split("\n")
    findings: list[Finding] = []
    scan_line_patterns(path, raw_lines, clean_lines, findings)
    scan_unordered_scheduling(path, raw_lines, clean_text, findings)
    scan_uninit_pod(path, raw_lines, clean_text, findings)
    return findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", required=True, type=Path,
                    help="directory tree to scan (e.g. src/)")
    args = ap.parse_args(argv)
    if not args.root.is_dir():
        print(f"detlint: no such directory: {args.root}", file=sys.stderr)
        return 2

    files = sorted(p for p in args.root.rglob("*")
                   if p.suffix in CXX_SUFFIXES and p.is_file())
    findings: list[Finding] = []
    for f in files:
        findings.extend(scan_file(f))

    for finding in findings:
        print(finding)
    if findings:
        print(f"detlint: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"detlint: clean ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
