#!/usr/bin/env python3
"""detlint (deprecated wrapper): forwards to mcs_analyze's determinism
checks.

detlint's regex heart lived and died by line patterns: it matched inside
comments and string literals, could not see a send() reached one call away
from an unordered loop, and guessed member types from indentation.
mcs_analyze (tools/mcs_analyze/) replaced it with a tokenizer + structural
model (and a libclang frontend where clang is installed), keeping the same
rule intent:

  rng              -> rng
  wallclock        -> wallclock
  unordered-sched  -> unordered-sink (now also catches JSON/stats sinks and
                      follows helper calls one level deep)
  uninit-pod       -> uninit-pod

Existing `// detlint: allow(<rule>)` suppressions keep working — the new
tool honors the legacy spellings as aliases. New code should suppress with
`// mcs-analyze: allow(<check>)` and run mcs_analyze directly:

  python3 tools/mcs_analyze --root src

This wrapper preserves detlint's CLI (`--root`, exit 0/1/2) for the ctest
entry points and any local scripts; it runs without a baseline, exactly as
detlint always did.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent / "mcs_analyze"
sys.path.insert(0, str(TOOL_DIR))

LEGACY_CHECKS = "rng,wallclock,unordered-sink,uninit-pod"


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", required=True, type=Path,
                    help="directory tree to scan (e.g. src/)")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return 2 if e.code not in (0, None) else 0
    if not args.root.is_dir():
        print(f"detlint: no such directory: {args.root}", file=sys.stderr)
        return 2

    print("detlint: deprecated; forwarding to "
          "`python3 tools/mcs_analyze --check "
          f"{LEGACY_CHECKS} --no-baseline`", file=sys.stderr)

    import cli  # tools/mcs_analyze/cli.py

    return cli.main(["--root", str(args.root),
                     "--check", LEGACY_CHECKS,
                     "--no-baseline",
                     "--frontend", "internal"])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
