#!/usr/bin/env python3
"""check_protocol_bench: gate CI on protocol-codec allocation and throughput.

Compares a fresh bench/protocol run (its JSON output) against the committed
baseline BENCH_protocol.json and fails when any of:

  * a workload's bytes_per_req rose more than --bytes-slack above the
    baseline. Allocator traffic per request is deterministic for a given
    build (it does not depend on machine load), so this is the hard gate:
    it catches "someone re-introduced a per-request allocation" even on a
    noisy runner. The small slack absorbs stdlib growth-policy differences
    across toolchains, not real regressions.
  * a legacy-vs-new workload's alloc_reduction (legacy bytes / new bytes,
    denominator clamped to 1 byte) fell below --min-alloc-reduction
    (default 3.0) — the zero-copy pipeline's contract from DESIGN.md §12.
  * a legacy-vs-new workload's speedup fell below --min-speedup (default
    1.0): both sides run in one process on one machine, so the ratio is
    robust to the runner being a different or busy box.
  * absolute ops_per_sec regressed more than --tolerance below baseline —
    only checked when the fresh run is not a smoke run (iteration scales
    match by construction then).

Usage:
  check_protocol_bench.py --baseline BENCH_protocol.json --current fresh.json \
      [--tolerance 0.25] [--min-alloc-reduction 3.0] [--min-speedup 1.0] \
      [--bytes-slack 0.10]

Exit status: 0 ok, 1 regression, 2 usage/schema error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from bench_gate import load_bench_json, report


def load(path: Path) -> dict:
    return load_bench_json(path, "check_protocol_bench", bench="protocol",
                           required=("workloads",))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--current", required=True, type=Path)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional ops/sec drop (default 0.25)")
    parser.add_argument("--min-alloc-reduction", type=float, default=3.0,
                        help="minimum legacy/new bytes-per-request ratio for "
                             "workloads with a legacy twin (default 3.0)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum new/legacy ops/sec ratio (default 1.0)")
    parser.add_argument("--bytes-slack", type=float, default=0.10,
                        help="allowed fractional bytes-per-req growth over "
                             "baseline (default 0.10); a zero-byte baseline "
                             "allows up to 16 bytes/req of slack")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    comparable = not current.get("smoke", False)
    if not comparable:
        print("check_protocol_bench: smoke run; "
              "skipping absolute ops/sec comparison")

    failures = []
    for name, base in baseline["workloads"].items():
        cur = current["workloads"].get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue

        # Hard, machine-independent gate: per-request allocator traffic.
        ceiling = max(base["bytes_per_req"] * (1.0 + args.bytes_slack), 16.0)
        if cur["bytes_per_req"] > ceiling:
            failures.append(
                f"{name}: bytes/req grew {base['bytes_per_req']:.1f} -> "
                f"{cur['bytes_per_req']:.1f} (ceiling {ceiling:.1f})")

        has_legacy = "alloc_reduction" in cur
        if has_legacy:
            if cur["alloc_reduction"] < args.min_alloc_reduction:
                failures.append(
                    f"{name}: alloc reduction vs legacy is "
                    f"{cur['alloc_reduction']:.1f}x, below the "
                    f"{args.min_alloc_reduction:.1f}x floor")
            if cur["speedup"] < args.min_speedup:
                failures.append(
                    f"{name}: speedup over legacy codec is "
                    f"{cur['speedup']:.2f}x, below the "
                    f"{args.min_speedup:.2f}x floor")

        if comparable:
            floor = base["ops_per_sec"] * (1.0 - args.tolerance)
            if cur["ops_per_sec"] < floor:
                failures.append(
                    f"{name}: ops/sec regressed {base['ops_per_sec']:.0f} -> "
                    f"{cur['ops_per_sec']:.0f} "
                    f"(floor {floor:.0f} at {args.tolerance:.0%} tolerance)")

        detail = (f", reduction {cur['alloc_reduction']:.1f}x, "
                  f"speedup {cur['speedup']:.2f}x" if has_legacy else "")
        print(f"{name}: {cur['ops_per_sec']:.0f} ops/sec, "
              f"{cur['bytes_per_req']:.1f} B/req "
              f"(baseline {base['bytes_per_req']:.1f}){detail}")

    return report("check_protocol_bench", failures)


if __name__ == "__main__":
    sys.exit(main())
